#include "crypto/ed25519.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <random>
#include <vector>

#include "common/sync.h"
#include "crypto/sha512.h"

namespace rdb::crypto {

namespace {

// ===========================================================================
// Field arithmetic over GF(p), p = 2^255 - 19, radix 2^51 (5 limbs).
// ===========================================================================

constexpr std::uint64_t kMask51 = (1ULL << 51) - 1;

struct Fe {
  std::uint64_t v[5]{};
};

Fe fe_zero() { return Fe{}; }
Fe fe_one() {
  Fe f;
  f.v[0] = 1;
  return f;
}

std::uint64_t load8(const std::uint8_t* p) {
  std::uint64_t x;
  std::memcpy(&x, p, 8);
  return x;  // little-endian hosts only (checked by tests)
}

Fe fe_frombytes(const std::uint8_t s[32]) {
  Fe h;
  h.v[0] = load8(s) & kMask51;
  h.v[1] = (load8(s + 6) >> 3) & kMask51;
  h.v[2] = (load8(s + 12) >> 6) & kMask51;
  h.v[3] = (load8(s + 19) >> 1) & kMask51;
  h.v[4] = (load8(s + 24) >> 12) & kMask51;  // drops the sign bit
  return h;
}

void fe_carry(Fe& h) {
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 4; ++i) {
      h.v[i + 1] += h.v[i] >> 51;
      h.v[i] &= kMask51;
    }
    h.v[0] += 19 * (h.v[4] >> 51);
    h.v[4] &= kMask51;
  }
}

void fe_tobytes(std::uint8_t out[32], Fe h) {
  fe_carry(h);
  // Canonical reduction: q = 1 iff h >= p.
  std::uint64_t q = (h.v[0] + 19) >> 51;
  q = (h.v[1] + q) >> 51;
  q = (h.v[2] + q) >> 51;
  q = (h.v[3] + q) >> 51;
  q = (h.v[4] + q) >> 51;
  h.v[0] += 19 * q;
  for (int i = 0; i < 4; ++i) {
    h.v[i + 1] += h.v[i] >> 51;
    h.v[i] &= kMask51;
  }
  h.v[4] &= kMask51;  // discard bit 255

  std::uint64_t parts[4];
  parts[0] = h.v[0] | (h.v[1] << 51);
  parts[1] = (h.v[1] >> 13) | (h.v[2] << 38);
  parts[2] = (h.v[2] >> 26) | (h.v[3] << 25);
  parts[3] = (h.v[3] >> 39) | (h.v[4] << 12);
  std::memcpy(out, parts, 32);
}

Fe fe_add(const Fe& a, const Fe& b) {
  Fe h;
  for (int i = 0; i < 5; ++i) h.v[i] = a.v[i] + b.v[i];
  fe_carry(h);
  return h;
}

Fe fe_sub(const Fe& a, const Fe& b) {
  // a + 2p - b keeps limbs non-negative.
  Fe h;
  h.v[0] = a.v[0] + ((1ULL << 52) - 38) - b.v[0];
  for (int i = 1; i < 5; ++i)
    h.v[i] = a.v[i] + ((1ULL << 52) - 2) - b.v[i];
  fe_carry(h);
  return h;
}

Fe fe_neg(const Fe& a) { return fe_sub(fe_zero(), a); }

using u128 = unsigned __int128;

/// Shared carry chain for the 102-bit column sums of fe_mul / fe_sq.
Fe fe_carry_wide(u128 r0, u128 r1, u128 r2, u128 r3, u128 r4) {
  Fe h;
  std::uint64_t c;
  h.v[0] = (std::uint64_t)r0 & kMask51;
  c = (std::uint64_t)(r0 >> 51);
  r1 += c;
  h.v[1] = (std::uint64_t)r1 & kMask51;
  c = (std::uint64_t)(r1 >> 51);
  r2 += c;
  h.v[2] = (std::uint64_t)r2 & kMask51;
  c = (std::uint64_t)(r2 >> 51);
  r3 += c;
  h.v[3] = (std::uint64_t)r3 & kMask51;
  c = (std::uint64_t)(r3 >> 51);
  r4 += c;
  h.v[4] = (std::uint64_t)r4 & kMask51;
  c = (std::uint64_t)(r4 >> 51);
  h.v[0] += 19 * c;
  h.v[1] += h.v[0] >> 51;
  h.v[0] &= kMask51;
  return h;
}

Fe fe_mul(const Fe& a, const Fe& b) {
  const std::uint64_t b19_1 = 19 * b.v[1], b19_2 = 19 * b.v[2],
                      b19_3 = 19 * b.v[3], b19_4 = 19 * b.v[4];
  u128 r0 = (u128)a.v[0] * b.v[0] + (u128)a.v[1] * b19_4 +
            (u128)a.v[2] * b19_3 + (u128)a.v[3] * b19_2 +
            (u128)a.v[4] * b19_1;
  u128 r1 = (u128)a.v[0] * b.v[1] + (u128)a.v[1] * b.v[0] +
            (u128)a.v[2] * b19_4 + (u128)a.v[3] * b19_3 +
            (u128)a.v[4] * b19_2;
  u128 r2 = (u128)a.v[0] * b.v[2] + (u128)a.v[1] * b.v[1] +
            (u128)a.v[2] * b.v[0] + (u128)a.v[3] * b19_4 +
            (u128)a.v[4] * b19_3;
  u128 r3 = (u128)a.v[0] * b.v[3] + (u128)a.v[1] * b.v[2] +
            (u128)a.v[2] * b.v[1] + (u128)a.v[3] * b.v[0] +
            (u128)a.v[4] * b19_4;
  u128 r4 = (u128)a.v[0] * b.v[4] + (u128)a.v[1] * b.v[3] +
            (u128)a.v[2] * b.v[2] + (u128)a.v[3] * b.v[1] +
            (u128)a.v[4] * b.v[0];
  return fe_carry_wide(r0, r1, r2, r3, r4);
}

/// Dedicated squaring: 15 limb products instead of fe_mul's 25.
Fe fe_sq(const Fe& a) {
  const std::uint64_t a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3],
                      a4 = a.v[4];
  const std::uint64_t d0 = 2 * a0, d1 = 2 * a1, d2 = 2 * a2, d3 = 2 * a3;
  const std::uint64_t a3_19 = 19 * a3, a4_19 = 19 * a4;
  u128 r0 = (u128)a0 * a0 + (u128)d1 * a4_19 + (u128)d2 * a3_19;
  u128 r1 = (u128)d0 * a1 + (u128)d2 * a4_19 + (u128)a3 * a3_19;
  u128 r2 = (u128)d0 * a2 + (u128)a1 * a1 + (u128)d3 * a4_19;
  u128 r3 = (u128)d0 * a3 + (u128)d1 * a2 + (u128)a4 * a4_19;
  u128 r4 = (u128)d0 * a4 + (u128)d1 * a3 + (u128)a2 * a2;
  return fe_carry_wide(r0, r1, r2, r3, r4);
}

Fe fe_sqn(Fe z, int n) {
  for (int i = 0; i < n; ++i) z = fe_sq(z);
  return z;
}

/// Generic square-and-multiply: z^e with e given as 32 little-endian bytes.
/// Only used at startup to derive curve constants; hot paths use the
/// addition-chain exponentiations below.
Fe fe_pow(const Fe& z, const std::uint8_t e[32]) {
  Fe result = fe_one();
  for (int i = 255; i >= 0; --i) {
    result = fe_sq(result);
    if ((e[i / 8] >> (i % 8)) & 1) result = fe_mul(result, z);
  }
  return result;
}

/// Shared prefix of the inversion / pow22523 addition chains: z^(2^250 - 1),
/// plus z^11 which the inversion tail needs.
void fe_pow250(const Fe& z, Fe& z_250_0, Fe& z11) {
  Fe z2 = fe_sq(z);                         // 2
  Fe z8 = fe_sqn(z2, 2);                    // 8
  Fe z9 = fe_mul(z, z8);                    // 9
  z11 = fe_mul(z2, z9);                     // 11
  Fe z22 = fe_sq(z11);                      // 22
  Fe z_5_0 = fe_mul(z9, z22);               // 31 = 2^5 - 1
  Fe t = fe_sqn(z_5_0, 5);
  Fe z_10_0 = fe_mul(t, z_5_0);             // 2^10 - 1
  t = fe_sqn(z_10_0, 10);
  Fe z_20_0 = fe_mul(t, z_10_0);            // 2^20 - 1
  t = fe_sqn(z_20_0, 20);
  Fe z_40_0 = fe_mul(t, z_20_0);            // 2^40 - 1
  t = fe_sqn(z_40_0, 10);
  Fe z_50_0 = fe_mul(t, z_10_0);            // 2^50 - 1
  t = fe_sqn(z_50_0, 50);
  Fe z_100_0 = fe_mul(t, z_50_0);           // 2^100 - 1
  t = fe_sqn(z_100_0, 100);
  Fe z_200_0 = fe_mul(t, z_100_0);          // 2^200 - 1
  t = fe_sqn(z_200_0, 50);
  z_250_0 = fe_mul(t, z_50_0);              // 2^250 - 1
}

/// z^(p-2) = z^(2^255 - 21) via addition chain (254 squarings, 11 muls).
Fe fe_invert(const Fe& z) {
  Fe z_250_0, z11;
  fe_pow250(z, z_250_0, z11);
  Fe t = fe_sqn(z_250_0, 5);                // 2^255 - 32
  return fe_mul(t, z11);                    // 2^255 - 21
}

/// z^((p-5)/8) = z^(2^252 - 3) via addition chain.
Fe fe_pow22523(const Fe& z) {
  Fe z_250_0, z11;
  fe_pow250(z, z_250_0, z11);
  Fe t = fe_sqn(z_250_0, 2);                // 2^252 - 4
  return fe_mul(t, z);                      // 2^252 - 3
}

bool fe_iszero(const Fe& a) {
  std::uint8_t s[32];
  fe_tobytes(s, a);
  std::uint8_t acc = 0;
  for (auto b : s) acc |= b;
  return acc == 0;
}

bool fe_eq(const Fe& a, const Fe& b) { return fe_iszero(fe_sub(a, b)); }

bool fe_isnegative(const Fe& a) {
  std::uint8_t s[32];
  fe_tobytes(s, a);
  return s[0] & 1;
}

// Curve constants, computed once at startup rather than transcribed (a typo
// in a transcribed constant is undetectable by inspection; computing them
// from first principles is checked by the RFC 8032 vectors).
struct Constants {
  Fe d;        // -121665/121666
  Fe d2;       // 2d
  Fe sqrtm1;   // sqrt(-1) = 2^((p-1)/4)

  Constants() {
    Fe k121665 = fe_zero();
    k121665.v[0] = 121665;
    Fe k121666 = fe_zero();
    k121666.v[0] = 121666;
    d = fe_mul(fe_neg(k121665), fe_invert(k121666));
    d2 = fe_add(d, d);
    Fe two = fe_zero();
    two.v[0] = 2;
    // (p-1)/4 = 2^253 - 5.
    std::uint8_t e[32];
    std::memset(e, 0xff, 32);
    e[0] = 0xfb;
    e[31] = 0x1f;
    sqrtm1 = fe_pow(two, e);
  }
};

const Constants& consts() {
  static const Constants c;
  return c;
}

// ===========================================================================
// Group: twisted Edwards -x^2 + y^2 = 1 + d x^2 y^2.
//
// Coordinate systems (the classic ref10 quartet):
//   Ge (P3, extended)   (X:Y:Z:T) with x = X/Z, y = Y/Z, T = XY/Z
//   GeP2 (projective)   (X:Y:Z)
//   GeP1P1 (completed)  intermediate ((X:Z), (Y:T)) result of add/double
//   GeCached            (Y+X, Y-X, Z, 2dT) — addition-ready form of a P3
//   GePrecomp           (y+x, y-x, 2dxy)   — addition-ready affine (Z = 1)
// ===========================================================================

struct Ge {
  Fe x, y, z, t;  // extended (P3)
};

struct GeP2 {
  Fe x, y, z;
};

struct GeP1P1 {
  Fe x, y, z, t;
};

struct GeCached {
  Fe ypx, ymx, z, t2d;
};

struct GePrecomp {
  Fe ypx, ymx, xy2d;
};

Ge ge_identity() {
  Ge g;
  g.x = fe_zero();
  g.y = fe_one();
  g.z = fe_one();
  g.t = fe_zero();
  return g;
}

GeP2 ge_p2_identity() {
  GeP2 g;
  g.x = fe_zero();
  g.y = fe_one();
  g.z = fe_one();
  return g;
}

/// Unified addition (add-2008-hwcd-3 for a = -1): valid for doubling too.
/// Reference path only; hot paths use the cached/precomp variants below.
Ge ge_add(const Ge& p, const Ge& q) {
  Fe a = fe_mul(fe_sub(p.y, p.x), fe_sub(q.y, q.x));
  Fe b = fe_mul(fe_add(p.y, p.x), fe_add(q.y, q.x));
  Fe c = fe_mul(fe_mul(p.t, consts().d2), q.t);
  Fe d = fe_mul(fe_add(p.z, p.z), q.z);
  Fe e = fe_sub(b, a);
  Fe f = fe_sub(d, c);
  Fe g = fe_add(d, c);
  Fe h = fe_add(b, a);
  Ge r;
  r.x = fe_mul(e, f);
  r.y = fe_mul(g, h);
  r.t = fe_mul(e, h);
  r.z = fe_mul(f, g);
  return r;
}

Ge ge_neg(const Ge& p) {
  Ge r = p;
  r.x = fe_neg(p.x);
  r.t = fe_neg(p.t);
  return r;
}

/// Binary double-and-add, scalar as 32 little-endian bytes (reference).
Ge ge_scalarmult(const Ge& p, const std::uint8_t scalar[32]) {
  Ge r = ge_identity();
  for (int i = 255; i >= 0; --i) {
    r = ge_add(r, r);
    if ((scalar[i / 8] >> (i % 8)) & 1) r = ge_add(r, p);
  }
  return r;
}

GeCached ge_to_cached(const Ge& p) {
  GeCached c;
  c.ypx = fe_add(p.y, p.x);
  c.ymx = fe_sub(p.y, p.x);
  c.z = p.z;
  c.t2d = fe_mul(p.t, consts().d2);
  return c;
}

GeP2 ge_p1p1_to_p2(const GeP1P1& p) {
  GeP2 r;
  r.x = fe_mul(p.x, p.t);
  r.y = fe_mul(p.y, p.z);
  r.z = fe_mul(p.z, p.t);
  return r;
}

Ge ge_p1p1_to_p3(const GeP1P1& p) {
  Ge r;
  r.x = fe_mul(p.x, p.t);
  r.y = fe_mul(p.y, p.z);
  r.z = fe_mul(p.z, p.t);
  r.t = fe_mul(p.x, p.y);
  return r;
}

/// Doubling of a projective point (dbl-2008-hwcd for a = -1): 4 squarings.
GeP1P1 ge_p2_dbl(const GeP2& p) {
  Fe xx = fe_sq(p.x);
  Fe yy = fe_sq(p.y);
  Fe zz2 = fe_sq(p.z);
  zz2 = fe_add(zz2, zz2);
  Fe xpy2 = fe_sq(fe_add(p.x, p.y));
  GeP1P1 r;
  r.y = fe_add(yy, xx);
  r.z = fe_sub(yy, xx);
  r.x = fe_sub(xpy2, r.y);
  r.t = fe_sub(zz2, r.z);
  return r;
}

GeP1P1 ge_p3_dbl(const Ge& p) {
  GeP2 q{p.x, p.y, p.z};
  return ge_p2_dbl(q);
}

/// P3 + Cached -> P1P1 (8 muls).
GeP1P1 ge_add_cached(const Ge& p, const GeCached& q) {
  Fe a = fe_mul(fe_add(p.y, p.x), q.ypx);
  Fe b = fe_mul(fe_sub(p.y, p.x), q.ymx);
  Fe c = fe_mul(q.t2d, p.t);
  Fe zz = fe_mul(p.z, q.z);
  Fe d = fe_add(zz, zz);
  GeP1P1 r;
  r.x = fe_sub(a, b);   // E
  r.y = fe_add(a, b);   // H
  r.z = fe_add(d, c);   // G
  r.t = fe_sub(d, c);   // F
  return r;
}

/// P3 - Cached -> P1P1.
GeP1P1 ge_sub_cached(const Ge& p, const GeCached& q) {
  Fe a = fe_mul(fe_add(p.y, p.x), q.ymx);
  Fe b = fe_mul(fe_sub(p.y, p.x), q.ypx);
  Fe c = fe_mul(q.t2d, p.t);
  Fe zz = fe_mul(p.z, q.z);
  Fe d = fe_add(zz, zz);
  GeP1P1 r;
  r.x = fe_sub(a, b);
  r.y = fe_add(a, b);
  r.z = fe_sub(d, c);
  r.t = fe_add(d, c);
  return r;
}

/// P3 + Precomp (affine) -> P1P1 (7 muls — Z2 = 1 saves one).
GeP1P1 ge_madd(const Ge& p, const GePrecomp& q) {
  Fe a = fe_mul(fe_add(p.y, p.x), q.ypx);
  Fe b = fe_mul(fe_sub(p.y, p.x), q.ymx);
  Fe c = fe_mul(q.xy2d, p.t);
  Fe d = fe_add(p.z, p.z);
  GeP1P1 r;
  r.x = fe_sub(a, b);
  r.y = fe_add(a, b);
  r.z = fe_add(d, c);
  r.t = fe_sub(d, c);
  return r;
}

/// P3 - Precomp (affine) -> P1P1.
GeP1P1 ge_msub(const Ge& p, const GePrecomp& q) {
  Fe a = fe_mul(fe_add(p.y, p.x), q.ymx);
  Fe b = fe_mul(fe_sub(p.y, p.x), q.ypx);
  Fe c = fe_mul(q.xy2d, p.t);
  Fe d = fe_add(p.z, p.z);
  GeP1P1 r;
  r.x = fe_sub(a, b);
  r.y = fe_add(a, b);
  r.z = fe_sub(d, c);
  r.t = fe_add(d, c);
  return r;
}

void ge_tobytes(std::uint8_t out[32], const Ge& p) {
  Fe zi = fe_invert(p.z);
  Fe x = fe_mul(p.x, zi);
  Fe y = fe_mul(p.y, zi);
  fe_tobytes(out, y);
  out[31] ^= static_cast<std::uint8_t>(fe_isnegative(x) ? 0x80 : 0x00);
}

void ge_p2_tobytes(std::uint8_t out[32], const GeP2& p) {
  Fe zi = fe_invert(p.z);
  Fe x = fe_mul(p.x, zi);
  Fe y = fe_mul(p.y, zi);
  fe_tobytes(out, y);
  out[31] ^= static_cast<std::uint8_t>(fe_isnegative(x) ? 0x80 : 0x00);
}

/// Point decompression (RFC 8032 §5.1.3). Returns false on invalid input.
/// Note: accepts non-canonical y encodings (y >= p); callers on the verify
/// path reject those separately via fe_bytes_canonical.
bool ge_frombytes(Ge& out, const std::uint8_t s[32]) {
  Fe y = fe_frombytes(s);
  bool sign = (s[31] & 0x80) != 0;

  Fe y2 = fe_sq(y);
  Fe u = fe_sub(y2, fe_one());             // y^2 - 1
  Fe v = fe_add(fe_mul(consts().d, y2), fe_one());  // d y^2 + 1

  // Candidate root: x = u v^3 (u v^7)^((p-5)/8).
  Fe v3 = fe_mul(fe_sq(v), v);
  Fe v7 = fe_mul(fe_sq(v3), v);
  Fe x = fe_mul(fe_mul(u, v3), fe_pow22523(fe_mul(u, v7)));

  Fe vx2 = fe_mul(v, fe_sq(x));
  if (!fe_eq(vx2, u)) {
    if (fe_eq(vx2, fe_neg(u))) {
      x = fe_mul(x, consts().sqrtm1);
    } else {
      return false;  // not a quadratic residue: invalid encoding
    }
  }
  if (fe_iszero(x) && sign) return false;  // -0 is non-canonical
  if (fe_isnegative(x) != sign) x = fe_neg(x);

  out.x = x;
  out.y = y;
  out.z = fe_one();
  out.t = fe_mul(x, y);
  return true;
}

/// True iff the 255-bit field-element part of `s` (sign bit excluded) is the
/// canonical (< p) encoding of its residue.
bool fe_bytes_canonical(const std::uint8_t s[32]) {
  std::uint8_t canon[32];
  fe_tobytes(canon, fe_frombytes(s));
  if ((canon[31] & 0x7f) != (s[31] & 0x7f)) return false;
  for (int i = 0; i < 31; ++i)
    if (canon[i] != s[i]) return false;
  return true;
}

/// True iff [8]A is the identity, i.e. A lies in the small (order-8) torsion
/// subgroup. Such keys admit signature malleability under the cofactorless
/// equation and are rejected.
bool ge_is_small_order(const Ge& a) {
  GeP2 r{a.x, a.y, a.z};
  for (int i = 0; i < 3; ++i) r = ge_p1p1_to_p2(ge_p2_dbl(r));
  return fe_iszero(r.x) && fe_eq(r.y, r.z);
}

// ===========================================================================
// Scalar arithmetic modulo L = 2^252 + 27742317777372353535851937790883648493.
// Hot path: Barrett reduction. Reference: binary shift-subtract (retained
// for cross-check tests).
// ===========================================================================

constexpr std::uint64_t kL[4] = {0x5812631a5cf5d3edULL, 0x14def9dea2f79cd6ULL,
                                 0x0000000000000000ULL, 0x1000000000000000ULL};

// r >= L (r given as 5 words to absorb the shift overflow)?
bool geq_l(const std::uint64_t r[5]) {
  if (r[4] != 0) return true;
  for (int i = 3; i >= 0; --i) {
    if (r[i] != kL[i]) return r[i] > kL[i];
  }
  return true;  // equal
}

void sub_l(std::uint64_t r[5]) {
  u128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    u128 d = (u128)r[i] - kL[i] - (std::uint64_t)borrow;
    r[i] = (std::uint64_t)d;
    borrow = (d >> 64) & 1;  // 1 when the subtraction wrapped
  }
  r[4] -= (std::uint64_t)borrow;
}

/// x mod L for a value given as `words` little-endian 64-bit words
/// (reference binary reduction — one bit per iteration).
void mod_l_ref(const std::uint64_t* x, int words, std::uint8_t out[32]) {
  std::uint64_t r[5] = {0, 0, 0, 0, 0};
  for (int bit = words * 64 - 1; bit >= 0; --bit) {
    // r = r << 1 | bit
    r[4] = (r[4] << 1) | (r[3] >> 63);
    r[3] = (r[3] << 1) | (r[2] >> 63);
    r[2] = (r[2] << 1) | (r[1] >> 63);
    r[1] = (r[1] << 1) | (r[0] >> 63);
    r[0] = (r[0] << 1) | ((x[bit / 64] >> (bit % 64)) & 1);
    if (geq_l(r)) sub_l(r);
  }
  std::memcpy(out, r, 32);
}

/// mu = floor(2^512 / L), the Barrett constant (261 bits, 5 words). Computed
/// once at startup by restoring division, reusing the tested geq_l / sub_l.
struct BarrettMu {
  std::uint64_t w[5]{};
  BarrettMu() {
    std::uint64_t rem[5] = {0, 0, 0, 0, 0};
    for (int bit = 512; bit >= 0; --bit) {
      rem[4] = (rem[4] << 1) | (rem[3] >> 63);
      rem[3] = (rem[3] << 1) | (rem[2] >> 63);
      rem[2] = (rem[2] << 1) | (rem[1] >> 63);
      rem[1] = (rem[1] << 1) | (rem[0] >> 63);
      rem[0] = rem[0] << 1;
      if (bit == 512) rem[0] |= 1;  // dividend = 2^512
      if (geq_l(rem)) {
        sub_l(rem);
        if (bit < 320) w[bit / 64] |= 1ULL << (bit % 64);
      }
    }
  }
};

const BarrettMu& barrett_mu() {
  static const BarrettMu mu;
  return mu;
}

/// x mod L for x < 2^512 given as 8 little-endian words (HAC 14.42 with
/// b = 2^64, k = 4): two truncated multiprecision products and at most two
/// conditional subtractions of L.
void mod_l_barrett(const std::uint64_t x[8], std::uint8_t out[32]) {
  const std::uint64_t* mu = barrett_mu().w;
  // q1 = floor(x / 2^192): words 3..7 (5 words). q2 = q1 * mu (10 words).
  std::uint64_t q2[10] = {};
  for (int i = 0; i < 5; ++i) {
    u128 carry = 0;
    for (int j = 0; j < 5; ++j) {
      u128 cur = (u128)x[3 + i] * mu[j] + q2[i + j] + (std::uint64_t)carry;
      q2[i + j] = (std::uint64_t)cur;
      carry = cur >> 64;
    }
    q2[i + 5] += (std::uint64_t)carry;
  }
  // q3 = floor(q2 / 2^320): words 5..9.
  const std::uint64_t* q3 = q2 + 5;
  // r2 = (q3 * L) mod 2^320 (truncated product, 5 words).
  std::uint64_t r2[5] = {};
  for (int i = 0; i < 5; ++i) {
    u128 carry = 0;
    for (int j = 0; j < 4 && i + j < 5; ++j) {
      u128 cur = (u128)q3[i] * kL[j] + r2[i + j] + (std::uint64_t)carry;
      r2[i + j] = (std::uint64_t)cur;
      carry = cur >> 64;
    }
    if (i + 4 < 5) r2[i + 4] += (std::uint64_t)carry;
  }
  // r = (x mod 2^320) - r2, computed mod 2^320 (Barrett guarantees the true
  // difference x - q3*L lies in [0, 3L), so discarding the borrow is exact).
  std::uint64_t r[5];
  u128 borrow = 0;
  for (int i = 0; i < 5; ++i) {
    u128 d = (u128)x[i] - r2[i] - (std::uint64_t)borrow;
    r[i] = (std::uint64_t)d;
    borrow = (d >> 64) & 1;
  }
  while (geq_l(r)) sub_l(r);
  std::memcpy(out, r, 32);
}

void sc_reduce64(const Digest512& h, std::uint8_t out[32]) {
  std::uint64_t x[8];
  std::memcpy(x, h.data(), 64);
  mod_l_barrett(x, out);
}

/// out = (a*b + c) mod L; a and c must be reduced (< L), b < 2^255 (a
/// clamped secret scalar) — then a*b + c < 2^512 and Barrett applies.
void sc_muladd(std::uint8_t out[32], const std::uint8_t a[32],
               const std::uint8_t b[32], const std::uint8_t c[32]) {
  std::uint64_t aw[4], bw[4], cw[4];
  std::memcpy(aw, a, 32);
  std::memcpy(bw, b, 32);
  std::memcpy(cw, c, 32);

  std::uint64_t prod[8] = {};
  for (int i = 0; i < 4; ++i) {
    u128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      u128 cur = (u128)aw[i] * bw[j] + prod[i + j] + (std::uint64_t)carry;
      prod[i + j] = (std::uint64_t)cur;
      carry = cur >> 64;
    }
    prod[i + 4] += (std::uint64_t)carry;
  }
  u128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    u128 cur = (u128)prod[i] + cw[i] + (std::uint64_t)carry;
    prod[i] = (std::uint64_t)cur;
    carry = cur >> 64;
  }
  for (int i = 4; i < 8 && carry; ++i) {
    u128 cur = (u128)prod[i] + (std::uint64_t)carry;
    prod[i] = (std::uint64_t)cur;
    carry = cur >> 64;
  }
  mod_l_barrett(prod, out);
}

/// S must be canonical (< L) per RFC 8032 verification.
bool sc_is_canonical(const std::uint8_t s[32]) {
  std::uint64_t r[5] = {0, 0, 0, 0, 0};
  std::memcpy(r, s, 32);
  return !geq_l(r);
}

const Ge& base_point() {
  // B's compressed encoding is 0x58 followed by 31 bytes of 0x66 (y = 4/5,
  // sign 0); decompression recovers it — reusing the tested code path
  // instead of transcribing coordinates.
  static const Ge b = [] {
    std::uint8_t enc[32];
    std::memset(enc, 0x66, 32);
    enc[0] = 0x58;
    Ge g;
    bool ok = ge_frombytes(g, enc);
    (void)ok;
    return g;
  }();
  return b;
}

void clamp(std::uint8_t a[32]) {
  a[0] &= 0xf8;
  a[31] &= 0x7f;
  a[31] |= 0x40;
}

/// Normalizes a vector of P3 points to affine addition-ready form with ONE
/// field inversion (Montgomery's trick): prefix-multiply the Z coordinates,
/// invert the total once, then peel the individual 1/Z_i off in reverse.
/// Used for the startup comb table and the per-wave R_i tables of batch
/// verification. Z is never zero for curve points in these coordinates (the
/// a = -1 unified formulas are complete), so the product is invertible.
std::vector<GePrecomp> ge_batch_to_precomp(const std::vector<Ge>& pts) {
  std::vector<GePrecomp> out(pts.size());
  if (pts.empty()) return out;
  std::vector<Fe> prefix(pts.size());
  Fe acc = fe_one();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    prefix[i] = acc;
    acc = fe_mul(acc, pts[i].z);
  }
  Fe inv = fe_invert(acc);
  for (std::size_t i = pts.size(); i-- > 0;) {
    Fe zi = fe_mul(inv, prefix[i]);
    inv = fe_mul(inv, pts[i].z);
    Fe x = fe_mul(pts[i].x, zi);
    Fe y = fe_mul(pts[i].y, zi);
    out[i].ypx = fe_add(y, x);
    out[i].ymx = fe_sub(y, x);
    out[i].xy2d = fe_mul(fe_mul(x, y), consts().d2);
  }
  return out;
}

// ===========================================================================
// Precomputed fixed-base tables, built once at startup.
//
//   comb[i][d-1] = d * 256^i * B   (i in 0..31, d in 1..255), affine.
//
// Fixed-base multiplication is then 32 table lookups + at most 32 mixed
// additions and ZERO doublings. The odd entries of row 0 double as the
// width-9 sliding-window NAF table for B used by verification
// (comb[0][2j] = (2j+1) * B).
//
// All 8160 points are normalized to affine with ONE field inversion via
// Montgomery's batch-inversion trick.
// ===========================================================================

struct BaseTables {
  static constexpr int kWindows = 32;   // one per scalar byte
  static constexpr int kEntries = 255;  // digits 1..255
  GePrecomp comb[kWindows][kEntries];

  BaseTables() {
    const int total = kWindows * kEntries;
    std::vector<Ge> pts(total);
    Ge pow = base_point();  // 256^i * B
    for (int i = 0; i < kWindows; ++i) {
      GeCached step = ge_to_cached(pow);
      pts[i * kEntries] = pow;
      for (int d = 2; d <= kEntries; ++d)
        pts[i * kEntries + d - 1] =
            ge_p1p1_to_p3(ge_add_cached(pts[i * kEntries + d - 2], step));
      if (i + 1 < kWindows) {
        GeP2 q{pow.x, pow.y, pow.z};
        for (int b = 0; b < 8; ++b) {
          GeP1P1 t = ge_p2_dbl(q);
          q = (b == 7) ? q : ge_p1p1_to_p2(t);
          if (b == 7) pow = ge_p1p1_to_p3(t);
        }
      }
    }
    // Batch inversion of all Z coordinates (Montgomery's trick).
    std::vector<GePrecomp> flat = ge_batch_to_precomp(pts);
    for (int i = 0; i < total; ++i) comb[i / kEntries][i % kEntries] = flat[i];
  }
};

const BaseTables& base_tables() {
  static const BaseTables t;
  return t;
}

/// [s]B via the radix-256 comb: one mixed addition per nonzero scalar byte.
Ge ge_scalarmult_base(const std::uint8_t s[32]) {
  const BaseTables& tbl = base_tables();
  Ge h = ge_identity();
  for (int i = 0; i < 32; ++i) {
    const std::uint8_t d = s[i];
    if (d) h = ge_p1p1_to_p3(ge_madd(h, tbl.comb[i][d - 1]));
  }
  return h;
}

// ===========================================================================
// Signed sliding-window NAF and the interleaved double-scalar multiply.
// ===========================================================================

/// Recodes a 256-bit scalar into signed odd digits with |digit| <= maxdigit
/// (maxdigit = 2^(w-1) - 1 for window width w); at most one nonzero digit in
/// any w consecutive positions.
void slide(std::int16_t r[256], const std::uint8_t* a, int maxdigit) {
  for (int i = 0; i < 256; ++i) r[i] = 1 & (a[i >> 3] >> (i & 7));
  for (int i = 0; i < 256; ++i) {
    if (!r[i]) continue;
    for (int b = 1; b < 16 && i + b < 256; ++b) {
      if (!r[i + b]) continue;
      if (r[i] + (r[i + b] << b) <= maxdigit) {
        r[i] += static_cast<std::int16_t>(r[i + b] << b);
        r[i + b] = 0;
      } else if (r[i] - (r[i + b] << b) >= -maxdigit) {
        r[i] -= static_cast<std::int16_t>(r[i + b] << b);
        for (int k = i + b; k < 256; ++k) {
          if (!r[k]) {
            r[k] = 1;
            break;
          }
          r[k] = 0;
        }
      } else {
        break;
      }
    }
  }
}

/// r = [s]B - [k]A in one interleaved pass (Shamir's trick), variable time.
/// `ai` is the per-key table of odd multiples of A: ai[j] = (2j+1) * A.
GeP2 ge_double_scalarmult_base_minus(const std::uint8_t s[32],
                                     const std::uint8_t k[32],
                                     const GeCached ai[8]) {
  std::int16_t bslide[256];  // digits for +[s]B, width 9 (|d| <= 255)
  std::int16_t aslide[256];  // digits for -[k]A, width 5 (|d| <= 15)
  slide(bslide, s, 255);
  slide(aslide, k, 15);
  const BaseTables& tbl = base_tables();

  GeP2 r = ge_p2_identity();
  int i = 255;
  while (i >= 0 && !aslide[i] && !bslide[i]) --i;
  for (; i >= 0; --i) {
    GeP1P1 t = ge_p2_dbl(r);
    if (aslide[i] > 0) {
      // subtract: result accumulates -[k]A
      t = ge_sub_cached(ge_p1p1_to_p3(t), ai[aslide[i] / 2]);
    } else if (aslide[i] < 0) {
      t = ge_add_cached(ge_p1p1_to_p3(t), ai[(-aslide[i]) / 2]);
    }
    if (bslide[i] > 0) {
      t = ge_madd(ge_p1p1_to_p3(t), tbl.comb[0][bslide[i] - 1]);
    } else if (bslide[i] < 0) {
      t = ge_msub(ge_p1p1_to_p3(t), tbl.comb[0][(-bslide[i]) - 1]);
    }
    r = ge_p1p1_to_p2(t);
  }
  return r;
}

}  // namespace

// ===========================================================================
// Expanded public keys + the process-wide decompression cache.
// ===========================================================================

struct Ed25519ExpandedKey {
  Ed25519PublicKey compressed{};
  GeCached multiples[8];  // multiples[j] = (2j+1) * A
};

namespace {

/// Validates (canonical encoding, on curve, not small-order) and fills the
/// odd-multiples table. Returns false when the key must be rejected.
bool expand_key_into(Ed25519ExpandedKey& out, const Ed25519PublicKey& pk) {
  if (!fe_bytes_canonical(pk.data())) return false;
  Ge a;
  if (!ge_frombytes(a, pk.data())) return false;
  if (ge_is_small_order(a)) return false;
  out.compressed = pk;
  out.multiples[0] = ge_to_cached(a);
  Ge a2 = ge_p1p1_to_p3(ge_p3_dbl(a));
  Ge u = a;
  for (int j = 1; j < 8; ++j) {
    u = ge_p1p1_to_p3(ge_add_cached(a2, out.multiples[j - 1]));
    out.multiples[j] = ge_to_cached(u);
  }
  return true;
}

/// Shared verification core given a validated expanded key.
bool verify_with(const Ed25519ExpandedKey& key, BytesView msg,
                 const Ed25519Signature& sig) {
  if (!sc_is_canonical(sig.data() + 32)) return false;

  Sha512 hk;
  hk.update(BytesView(sig.data(), 32));
  hk.update(BytesView(key.compressed.data(), 32));
  hk.update(msg);
  std::uint8_t k[32];
  sc_reduce64(hk.finish(), k);

  // Cofactorless check: compress([S]B - [k]A) must equal the R bytes.
  GeP2 v = ge_double_scalarmult_base_minus(sig.data() + 32, k, key.multiples);
  std::uint8_t v_bytes[32];
  ge_p2_tobytes(v_bytes, v);
  return std::memcmp(v_bytes, sig.data(), 32) == 0;
}

// ===========================================================================
// Batch verification: randomized linear combination, one interleaved MSM.
// ===========================================================================

/// Randomizer stream for batch verification: SHA-512 in counter mode over a
/// per-thread seed drawn from std::random_device (stirred with the monotonic
/// clock in case the device is weak). The only property batch soundness
/// needs is that an attacker submitting signatures cannot PREDICT z_i before
/// the wave is checked — this is not a general-purpose CSPRNG and its output
/// never leaves the process. thread_local so the hot path takes no locks.
struct RandomizerStream {
  std::uint8_t seed[32]{};
  std::uint64_t counter{0};
  std::uint8_t buf[64]{};
  std::size_t used{sizeof(buf)};

  RandomizerStream() {
    std::random_device rd;
    std::uint32_t words[8];
    for (auto& w : words) w = rd();
    std::uint8_t raw[32];
    std::memcpy(raw, words, sizeof(raw));
    Sha512 h;
    h.update(BytesView(raw, sizeof(raw)));
    const std::int64_t now =
        std::chrono::steady_clock::now().time_since_epoch().count();
    std::uint8_t now_bytes[8];
    std::memcpy(now_bytes, &now, sizeof(now_bytes));
    h.update(BytesView(now_bytes, sizeof(now_bytes)));
    std::memcpy(seed, h.finish().data(), sizeof(seed));
  }

  void fill(std::uint8_t* out, std::size_t len) {
    while (len > 0) {
      if (used == sizeof(buf)) {
        Sha512 h;
        h.update(BytesView(seed, sizeof(seed)));
        std::uint8_t ctr[8];
        std::memcpy(ctr, &counter, sizeof(ctr));
        ++counter;
        h.update(BytesView(ctr, sizeof(ctr)));
        std::memcpy(buf, h.finish().data(), sizeof(buf));
        used = 0;
      }
      const std::size_t take = std::min(len, sizeof(buf) - used);
      std::memcpy(out, buf + used, take);
      used += take;
      out += take;
      len -= take;
    }
  }
};

RandomizerStream& randomizer_stream() {
  thread_local RandomizerStream s;
  return s;
}

/// Per-item state shared by the MSM and the bisection recursion: R is
/// decompressed and the challenge scalar hashed once per wave, not once per
/// split.
struct BatchSlot {
  Ge r{};                // decompressed R
  std::uint8_t h[32]{};  // SHA-512(R || A || M) mod L
};

/// Evaluates the randomized linear combination over the items selected by
/// idx[0..count). Randomizers are sampled fresh on every call (a re-check
/// after a failed split must not reuse scalars). One shared doubling ladder
/// interleaves three term families:
///   * the aggregated B coefficient -(sum z_i s_i) mod L — width-9 NAF
///     against the comb table's odd row, exactly as serial verification;
///   * per-item z_i h_i mod L — width-5 NAF against the expanded key's
///     odd-multiples table (the A_i term);
///   * per-item z_i — width-5 NAF against a per-R odd-multiples table, all
///     count*8 points normalized to affine with ONE inversion (Montgomery).
/// Returns true iff the combined point is exactly the identity (checked in
/// projective coordinates: X = 0 and Y = Z — no inversion, no cofactor
/// multiplication).
bool batch_msm_check(const Ed25519BatchItem* items, const BatchSlot* slots,
                     const std::size_t* idx, std::size_t count) {
  std::vector<std::array<std::uint8_t, 32>> z(count);
  std::vector<std::array<std::uint8_t, 32>> a(count);
  std::uint8_t csum[32] = {};  // sum z_i s_i mod L
  const std::uint8_t zero[32] = {};
  for (std::size_t j = 0; j < count; ++j) {
    auto& zj = z[j];
    zj.fill(0);
    randomizer_stream().fill(zj.data(), 16);
    // Odd z_i: a lone order-8 torsion discrepancy then cannot vanish from
    // the combined sum (docs/crypto.md "Batch verification").
    zj[0] |= 1;
    const Ed25519BatchItem& it = items[idx[j]];
    sc_muladd(csum, zj.data(), it.sig + 32, csum);        // += z_j * s_j
    sc_muladd(a[j].data(), zj.data(), slots[idx[j]].h, zero);  // z_j * h_j
  }

  // B coefficient: -(sum z_i s_i) mod L, i.e. L - csum unless csum = 0.
  std::uint8_t bcoef[32] = {};
  std::uint64_t cw[4];
  std::memcpy(cw, csum, 32);
  if ((cw[0] | cw[1] | cw[2] | cw[3]) != 0) {
    std::uint64_t nw[4];
    u128 borrow = 0;
    for (int i = 0; i < 4; ++i) {
      u128 d = (u128)kL[i] - cw[i] - (std::uint64_t)borrow;
      nw[i] = (std::uint64_t)d;
      borrow = (d >> 64) & 1;
    }
    std::memcpy(bcoef, nw, 32);
  }

  // Per-item odd multiples of R_i, batch-normalized to affine.
  std::vector<Ge> rmul(count * 8);
  for (std::size_t j = 0; j < count; ++j) {
    const Ge& rp = slots[idx[j]].r;
    rmul[j * 8] = rp;
    const GeCached r2 = ge_to_cached(ge_p1p1_to_p3(ge_p3_dbl(rp)));
    for (int m = 1; m < 8; ++m)
      rmul[j * 8 + m] = ge_p1p1_to_p3(ge_add_cached(rmul[j * 8 + m - 1], r2));
  }
  const std::vector<GePrecomp> rpre = ge_batch_to_precomp(rmul);

  std::vector<std::int16_t> ha(count * 256);  // digits for [z_i h_i]A_i
  std::vector<std::int16_t> zr(count * 256);  // digits for [z_i]R_i
  std::int16_t bslide[256];                   // digits for the B term
  slide(bslide, bcoef, 255);
  for (std::size_t j = 0; j < count; ++j) {
    slide(&ha[j * 256], a[j].data(), 15);
    slide(&zr[j * 256], z[j].data(), 15);
  }

  auto column_empty = [&](int bit) {
    if (bslide[bit]) return false;
    for (std::size_t j = 0; j < count; ++j)
      if (ha[j * 256 + bit] || zr[j * 256 + bit]) return false;
    return true;
  };
  int i = 255;
  while (i >= 0 && column_empty(i)) --i;

  GeP2 acc = ge_p2_identity();
  for (; i >= 0; --i) {
    GeP1P1 t = ge_p2_dbl(acc);
    for (std::size_t j = 0; j < count; ++j) {
      const std::int16_t da = ha[j * 256 + i];
      if (da > 0) {
        t = ge_add_cached(ge_p1p1_to_p3(t),
                          items[idx[j]].key->multiples[da / 2]);
      } else if (da < 0) {
        t = ge_sub_cached(ge_p1p1_to_p3(t),
                          items[idx[j]].key->multiples[(-da) / 2]);
      }
      const std::int16_t dz = zr[j * 256 + i];
      if (dz > 0) {
        t = ge_madd(ge_p1p1_to_p3(t), rpre[j * 8 + dz / 2]);
      } else if (dz < 0) {
        t = ge_msub(ge_p1p1_to_p3(t), rpre[j * 8 + (-dz) / 2]);
      }
    }
    if (bslide[i] > 0) {
      t = ge_madd(ge_p1p1_to_p3(t), base_tables().comb[0][bslide[i] - 1]);
    } else if (bslide[i] < 0) {
      t = ge_msub(ge_p1p1_to_p3(t), base_tables().comb[0][(-bslide[i]) - 1]);
    }
    acc = ge_p1p1_to_p2(t);
  }
  return fe_iszero(acc.x) && fe_eq(acc.y, acc.z);
}

/// Settles items[idx[0..count)]: accept all on a passing MSM, otherwise
/// bisect at the midpoint and recurse. The split points are deterministic —
/// only the randomizers are fresh per check — so a given wave isolates the
/// same culprits every time. Leaves of size <= 2 use the serial equation
/// directly: an MSM over two items costs about as much as two serial
/// verifies, and the serial path is the accept/reject oracle the batch must
/// agree with.
void batch_settle(const Ed25519BatchItem* items, const BatchSlot* slots,
                  const std::size_t* idx, std::size_t count, bool* verdicts,
                  Ed25519BatchStats& stats) {
  if (count == 0) return;
  if (count <= 2) {
    for (std::size_t j = 0; j < count; ++j) {
      const Ed25519BatchItem& it = items[idx[j]];
      Ed25519Signature sig;
      std::memcpy(sig.data(), it.sig, sig.size());
      verdicts[idx[j]] = verify_with(*it.key, it.msg, sig);
    }
    stats.serial_fallbacks += count;
    return;
  }
  ++stats.msm_checks;
  if (batch_msm_check(items, slots, idx, count)) {
    for (std::size_t j = 0; j < count; ++j) verdicts[idx[j]] = true;
    return;
  }
  ++stats.bisections;
  const std::size_t half = count / 2;
  batch_settle(items, slots, idx, half, verdicts, stats);
  batch_settle(items, slots, idx + half, count - half, verdicts, stats);
}

/// Small direct-mapped cache of expanded keys for callers that use the plain
/// ed25519_verify entry point (no KeyRegistry in sight). Invalid keys are
/// cached too (as nullptr) so repeated garbage is rejected cheaply.
struct ModuleKeyCache {
  static constexpr std::size_t kBuckets = 256;
  struct Bucket {
    bool filled{false};
    Ed25519PublicKey key{};
    Ed25519ExpandedKeyPtr expanded;
  };
  Mutex mu{LockRank::kCryptoModule, "ed25519.module_key_cache"};
  Bucket buckets[kBuckets] RDB_GUARDED_BY(mu);

  Ed25519ExpandedKeyPtr lookup_or_expand(const Ed25519PublicKey& pk) {
    const std::size_t idx =
        static_cast<std::size_t>(load8(pk.data())) % kBuckets;
    {
      MutexLock lock(mu);
      Bucket& b = buckets[idx];
      if (b.filled && b.key == pk) return b.expanded;
    }
    Ed25519ExpandedKeyPtr expanded = ed25519_expand_key(pk);
    MutexLock lock(mu);
    Bucket& b = buckets[idx];
    b.filled = true;
    b.key = pk;
    b.expanded = expanded;
    return expanded;
  }
};

ModuleKeyCache& module_key_cache() {
  static ModuleKeyCache c;
  return c;
}

}  // namespace

// ===========================================================================
// Public API (RFC 8032 §5.1.5 / §5.1.6 / §5.1.7).
// ===========================================================================

Ed25519PublicKey ed25519_public_key(const Ed25519Seed& seed) {
  Digest512 h = sha512(BytesView(seed.data(), seed.size()));
  std::uint8_t a[32];
  std::memcpy(a, h.data(), 32);
  clamp(a);
  Ge A = ge_scalarmult_base(a);
  Ed25519PublicKey pub;
  ge_tobytes(pub.data(), A);
  return pub;
}

Ed25519Signature ed25519_sign(BytesView msg, const Ed25519Seed& seed,
                              const Ed25519PublicKey& public_key) {
  Digest512 h = sha512(BytesView(seed.data(), seed.size()));
  std::uint8_t a[32];
  std::memcpy(a, h.data(), 32);
  clamp(a);

  // r = SHA512(prefix || M) mod L
  Sha512 hr;
  hr.update(BytesView(h.data() + 32, 32));
  hr.update(msg);
  std::uint8_t r[32];
  sc_reduce64(hr.finish(), r);

  Ge R = ge_scalarmult_base(r);
  Ed25519Signature sig{};
  ge_tobytes(sig.data(), R);

  // k = SHA512(R || A || M) mod L
  Sha512 hk;
  hk.update(BytesView(sig.data(), 32));
  hk.update(BytesView(public_key.data(), 32));
  hk.update(msg);
  std::uint8_t k[32];
  sc_reduce64(hk.finish(), k);

  // S = (r + k*a) mod L
  sc_muladd(sig.data() + 32, k, a, r);
  return sig;
}

Ed25519ExpandedKeyPtr ed25519_expand_key(const Ed25519PublicKey& public_key) {
  auto key = std::make_shared<Ed25519ExpandedKey>();
  if (!expand_key_into(*key, public_key)) return nullptr;
  return key;
}

bool ed25519_verify_expanded(BytesView msg, const Ed25519Signature& sig,
                             const Ed25519ExpandedKey& key) {
  return verify_with(key, msg, sig);
}

bool ed25519_verify(BytesView msg, const Ed25519Signature& sig,
                    const Ed25519PublicKey& public_key) {
  Ed25519ExpandedKeyPtr key = module_key_cache().lookup_or_expand(public_key);
  if (!key) return false;
  return verify_with(*key, msg, sig);
}

std::size_t ed25519_verify_batch(const Ed25519BatchItem* items, std::size_t n,
                                 bool* verdicts, Ed25519BatchStats* stats) {
  Ed25519BatchStats local;
  std::vector<BatchSlot> slots(n);
  std::vector<std::size_t> msm_idx;
  msm_idx.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    verdicts[i] = false;
    const Ed25519BatchItem& it = items[i];
    if (it.key == nullptr || it.sig == nullptr) continue;
    // Pre-screening mirrors the serial path's rejections exactly: a
    // malformed item must come back `false` without poisoning the combined
    // sum for everyone else in the wave.
    if (!sc_is_canonical(it.sig + 32)) continue;  // S >= L
    if (!fe_bytes_canonical(it.sig)) continue;    // non-canonical R encoding
    BatchSlot& slot = slots[i];
    if (!ge_frombytes(slot.r, it.sig)) continue;  // R not on the curve
    if (ge_is_small_order(slot.r)) {
      // An R inside the torsion subgroup could hide from the randomized sum
      // (its contribution can vanish mod 8); settle such items serially.
      Ed25519Signature sig;
      std::memcpy(sig.data(), it.sig, sig.size());
      verdicts[i] = verify_with(*it.key, it.msg, sig);
      ++local.serial_fallbacks;
      continue;
    }
    Sha512 hk;
    hk.update(BytesView(it.sig, 32));
    hk.update(BytesView(it.key->compressed.data(), 32));
    hk.update(it.msg);
    sc_reduce64(hk.finish(), slot.h);
    msm_idx.push_back(i);
  }
  batch_settle(items, slots.data(), msm_idx.data(), msm_idx.size(), verdicts,
               local);
  if (stats != nullptr) {
    stats->msm_checks += local.msm_checks;
    stats->bisections += local.bisections;
    stats->serial_fallbacks += local.serial_fallbacks;
  }
  std::size_t valid = 0;
  for (std::size_t i = 0; i < n; ++i) valid += verdicts[i] ? 1u : 0u;
  return valid;
}

// ===========================================================================
// Reference implementations (cross-check + old-vs-new benchmarking).
// ===========================================================================

namespace detail {

void scalarmult_base_ref(std::uint8_t out[32], const std::uint8_t scalar[32]) {
  Ge r = ge_scalarmult(base_point(), scalar);
  ge_tobytes(out, r);
}

void scalarmult_base(std::uint8_t out[32], const std::uint8_t scalar[32]) {
  Ge r = ge_scalarmult_base(scalar);
  ge_tobytes(out, r);
}

void sc_reduce512_ref(const std::uint8_t in[64], std::uint8_t out[32]) {
  std::uint64_t x[8];
  std::memcpy(x, in, 64);
  mod_l_ref(x, 8, out);
}

void sc_reduce512(const std::uint8_t in[64], std::uint8_t out[32]) {
  std::uint64_t x[8];
  std::memcpy(x, in, 64);
  mod_l_barrett(x, out);
}

Ed25519Signature sign_ref(BytesView msg, const Ed25519Seed& seed,
                          const Ed25519PublicKey& public_key) {
  Digest512 h = sha512(BytesView(seed.data(), seed.size()));
  std::uint8_t a[32];
  std::memcpy(a, h.data(), 32);
  clamp(a);

  Sha512 hr;
  hr.update(BytesView(h.data() + 32, 32));
  hr.update(msg);
  std::uint64_t x[8];
  std::memcpy(x, hr.finish().data(), 64);
  std::uint8_t r[32];
  mod_l_ref(x, 8, r);

  Ge R = ge_scalarmult(base_point(), r);
  Ed25519Signature sig{};
  ge_tobytes(sig.data(), R);

  Sha512 hk;
  hk.update(BytesView(sig.data(), 32));
  hk.update(BytesView(public_key.data(), 32));
  hk.update(msg);
  std::uint8_t k[32];
  std::memcpy(x, hk.finish().data(), 64);
  mod_l_ref(x, 8, k);

  // S = (r + k*a) mod L via schoolbook product + binary reduction.
  std::uint64_t aw[4], bw[4], cw[4];
  std::memcpy(aw, k, 32);
  std::memcpy(bw, a, 32);
  std::memcpy(cw, r, 32);
  std::uint64_t prod[9] = {};
  for (int i = 0; i < 4; ++i) {
    u128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      u128 cur = (u128)aw[i] * bw[j] + prod[i + j] + (std::uint64_t)carry;
      prod[i + j] = (std::uint64_t)cur;
      carry = cur >> 64;
    }
    prod[i + 4] += (std::uint64_t)carry;
  }
  u128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    u128 cur = (u128)prod[i] + cw[i] + (std::uint64_t)carry;
    prod[i] = (std::uint64_t)cur;
    carry = cur >> 64;
  }
  for (int i = 4; i < 9 && carry; ++i) {
    u128 cur = (u128)prod[i] + (std::uint64_t)carry;
    prod[i] = (std::uint64_t)cur;
    carry = cur >> 64;
  }
  mod_l_ref(prod, 9, sig.data() + 32);
  return sig;
}

bool verify_ref(BytesView msg, const Ed25519Signature& sig,
                const Ed25519PublicKey& public_key) {
  if (!sc_is_canonical(sig.data() + 32)) return false;
  Ge A;
  if (!ge_frombytes(A, public_key.data())) return false;

  Sha512 hk;
  hk.update(BytesView(sig.data(), 32));
  hk.update(BytesView(public_key.data(), 32));
  hk.update(msg);
  std::uint64_t x[8];
  std::memcpy(x, hk.finish().data(), 64);
  std::uint8_t k[32];
  mod_l_ref(x, 8, k);

  // Check R == sB - kA (equivalently sB == R + kA): two full binary
  // scalar multiplications — the seed's verification path.
  std::uint8_t s[32];
  std::memcpy(s, sig.data() + 32, 32);
  Ge sB = ge_scalarmult(base_point(), s);
  Ge kA = ge_scalarmult(ge_neg(A), k);
  Ge V = ge_add(sB, kA);
  std::uint8_t v_bytes[32];
  ge_tobytes(v_bytes, V);
  return std::memcmp(v_bytes, sig.data(), 32) == 0;
}

}  // namespace detail

}  // namespace rdb::crypto
