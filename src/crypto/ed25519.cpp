#include "crypto/ed25519.h"

#include <cstring>

#include "crypto/sha512.h"

namespace rdb::crypto {

namespace {

// ===========================================================================
// Field arithmetic over GF(p), p = 2^255 - 19, radix 2^51 (5 limbs).
// ===========================================================================

constexpr std::uint64_t kMask51 = (1ULL << 51) - 1;

struct Fe {
  std::uint64_t v[5]{};
};

Fe fe_zero() { return Fe{}; }
Fe fe_one() {
  Fe f;
  f.v[0] = 1;
  return f;
}

std::uint64_t load8(const std::uint8_t* p) {
  std::uint64_t x;
  std::memcpy(&x, p, 8);
  return x;  // little-endian hosts only (checked by tests)
}

Fe fe_frombytes(const std::uint8_t s[32]) {
  Fe h;
  h.v[0] = load8(s) & kMask51;
  h.v[1] = (load8(s + 6) >> 3) & kMask51;
  h.v[2] = (load8(s + 12) >> 6) & kMask51;
  h.v[3] = (load8(s + 19) >> 1) & kMask51;
  h.v[4] = (load8(s + 24) >> 12) & kMask51;  // drops the sign bit
  return h;
}

void fe_carry(Fe& h) {
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 4; ++i) {
      h.v[i + 1] += h.v[i] >> 51;
      h.v[i] &= kMask51;
    }
    h.v[0] += 19 * (h.v[4] >> 51);
    h.v[4] &= kMask51;
  }
}

void fe_tobytes(std::uint8_t out[32], Fe h) {
  fe_carry(h);
  // Canonical reduction: q = 1 iff h >= p.
  std::uint64_t q = (h.v[0] + 19) >> 51;
  q = (h.v[1] + q) >> 51;
  q = (h.v[2] + q) >> 51;
  q = (h.v[3] + q) >> 51;
  q = (h.v[4] + q) >> 51;
  h.v[0] += 19 * q;
  for (int i = 0; i < 4; ++i) {
    h.v[i + 1] += h.v[i] >> 51;
    h.v[i] &= kMask51;
  }
  h.v[4] &= kMask51;  // discard bit 255

  std::uint64_t parts[4];
  parts[0] = h.v[0] | (h.v[1] << 51);
  parts[1] = (h.v[1] >> 13) | (h.v[2] << 38);
  parts[2] = (h.v[2] >> 26) | (h.v[3] << 25);
  parts[3] = (h.v[3] >> 39) | (h.v[4] << 12);
  std::memcpy(out, parts, 32);
}

Fe fe_add(const Fe& a, const Fe& b) {
  Fe h;
  for (int i = 0; i < 5; ++i) h.v[i] = a.v[i] + b.v[i];
  fe_carry(h);
  return h;
}

Fe fe_sub(const Fe& a, const Fe& b) {
  // a + 2p - b keeps limbs non-negative.
  Fe h;
  h.v[0] = a.v[0] + ((1ULL << 52) - 38) - b.v[0];
  for (int i = 1; i < 5; ++i)
    h.v[i] = a.v[i] + ((1ULL << 52) - 2) - b.v[i];
  fe_carry(h);
  return h;
}

Fe fe_neg(const Fe& a) { return fe_sub(fe_zero(), a); }

Fe fe_mul(const Fe& a, const Fe& b) {
  using u128 = unsigned __int128;
  const std::uint64_t b19_1 = 19 * b.v[1], b19_2 = 19 * b.v[2],
                      b19_3 = 19 * b.v[3], b19_4 = 19 * b.v[4];
  u128 r0 = (u128)a.v[0] * b.v[0] + (u128)a.v[1] * b19_4 +
            (u128)a.v[2] * b19_3 + (u128)a.v[3] * b19_2 +
            (u128)a.v[4] * b19_1;
  u128 r1 = (u128)a.v[0] * b.v[1] + (u128)a.v[1] * b.v[0] +
            (u128)a.v[2] * b19_4 + (u128)a.v[3] * b19_3 +
            (u128)a.v[4] * b19_2;
  u128 r2 = (u128)a.v[0] * b.v[2] + (u128)a.v[1] * b.v[1] +
            (u128)a.v[2] * b.v[0] + (u128)a.v[3] * b19_4 +
            (u128)a.v[4] * b19_3;
  u128 r3 = (u128)a.v[0] * b.v[3] + (u128)a.v[1] * b.v[2] +
            (u128)a.v[2] * b.v[1] + (u128)a.v[3] * b.v[0] +
            (u128)a.v[4] * b19_4;
  u128 r4 = (u128)a.v[0] * b.v[4] + (u128)a.v[1] * b.v[3] +
            (u128)a.v[2] * b.v[2] + (u128)a.v[3] * b.v[1] +
            (u128)a.v[4] * b.v[0];

  Fe h;
  std::uint64_t c;
  h.v[0] = (std::uint64_t)r0 & kMask51;
  c = (std::uint64_t)(r0 >> 51);
  r1 += c;
  h.v[1] = (std::uint64_t)r1 & kMask51;
  c = (std::uint64_t)(r1 >> 51);
  r2 += c;
  h.v[2] = (std::uint64_t)r2 & kMask51;
  c = (std::uint64_t)(r2 >> 51);
  r3 += c;
  h.v[3] = (std::uint64_t)r3 & kMask51;
  c = (std::uint64_t)(r3 >> 51);
  r4 += c;
  h.v[4] = (std::uint64_t)r4 & kMask51;
  c = (std::uint64_t)(r4 >> 51);
  h.v[0] += 19 * c;
  h.v[1] += h.v[0] >> 51;
  h.v[0] &= kMask51;
  return h;
}

Fe fe_sq(const Fe& a) { return fe_mul(a, a); }

/// Generic square-and-multiply: z^e with e given as 32 little-endian bytes.
Fe fe_pow(const Fe& z, const std::uint8_t e[32]) {
  Fe result = fe_one();
  for (int i = 255; i >= 0; --i) {
    result = fe_sq(result);
    if ((e[i / 8] >> (i % 8)) & 1) result = fe_mul(result, z);
  }
  return result;
}

Fe fe_invert(const Fe& z) {
  // z^(p-2), p-2 = 2^255 - 21.
  std::uint8_t e[32];
  std::memset(e, 0xff, 32);
  e[0] = 0xeb;
  e[31] = 0x7f;
  return fe_pow(z, e);
}

Fe fe_pow22523(const Fe& z) {
  // z^((p-5)/8), (p-5)/8 = 2^252 - 3.
  std::uint8_t e[32];
  std::memset(e, 0xff, 32);
  e[0] = 0xfd;
  e[31] = 0x0f;
  return fe_pow(z, e);
}

bool fe_iszero(const Fe& a) {
  std::uint8_t s[32];
  fe_tobytes(s, a);
  std::uint8_t acc = 0;
  for (auto b : s) acc |= b;
  return acc == 0;
}

bool fe_eq(const Fe& a, const Fe& b) { return fe_iszero(fe_sub(a, b)); }

bool fe_isnegative(const Fe& a) {
  std::uint8_t s[32];
  fe_tobytes(s, a);
  return s[0] & 1;
}

// Curve constants, computed once at startup rather than transcribed (a typo
// in a transcribed constant is undetectable by inspection; computing them
// from first principles is checked by the RFC 8032 vectors).
struct Constants {
  Fe d;        // -121665/121666
  Fe d2;       // 2d
  Fe sqrtm1;   // sqrt(-1) = 2^((p-1)/4)

  Constants() {
    Fe k121665 = fe_zero();
    k121665.v[0] = 121665;
    Fe k121666 = fe_zero();
    k121666.v[0] = 121666;
    d = fe_mul(fe_neg(k121665), fe_invert(k121666));
    d2 = fe_add(d, d);
    Fe two = fe_zero();
    two.v[0] = 2;
    // (p-1)/4 = 2^253 - 5.
    std::uint8_t e[32];
    std::memset(e, 0xff, 32);
    e[0] = 0xfb;
    e[31] = 0x1f;
    sqrtm1 = fe_pow(two, e);
  }
};

const Constants& consts() {
  static const Constants c;
  return c;
}

// ===========================================================================
// Group: twisted Edwards -x^2 + y^2 = 1 + d x^2 y^2, extended coordinates.
// ===========================================================================

struct Ge {
  Fe x, y, z, t;  // x = X/Z, y = Y/Z, t = XY/Z
};

Ge ge_identity() {
  Ge g;
  g.x = fe_zero();
  g.y = fe_one();
  g.z = fe_one();
  g.t = fe_zero();
  return g;
}

/// Unified addition (add-2008-hwcd-3 for a = -1): valid for doubling too.
Ge ge_add(const Ge& p, const Ge& q) {
  Fe a = fe_mul(fe_sub(p.y, p.x), fe_sub(q.y, q.x));
  Fe b = fe_mul(fe_add(p.y, p.x), fe_add(q.y, q.x));
  Fe c = fe_mul(fe_mul(p.t, consts().d2), q.t);
  Fe d = fe_mul(fe_add(p.z, p.z), q.z);
  Fe e = fe_sub(b, a);
  Fe f = fe_sub(d, c);
  Fe g = fe_add(d, c);
  Fe h = fe_add(b, a);
  Ge r;
  r.x = fe_mul(e, f);
  r.y = fe_mul(g, h);
  r.t = fe_mul(e, h);
  r.z = fe_mul(f, g);
  return r;
}

Ge ge_neg(const Ge& p) {
  Ge r = p;
  r.x = fe_neg(p.x);
  r.t = fe_neg(p.t);
  return r;
}

/// Binary double-and-add, scalar as 32 little-endian bytes.
Ge ge_scalarmult(const Ge& p, const std::uint8_t scalar[32]) {
  Ge r = ge_identity();
  for (int i = 255; i >= 0; --i) {
    r = ge_add(r, r);
    if ((scalar[i / 8] >> (i % 8)) & 1) r = ge_add(r, p);
  }
  return r;
}

void ge_tobytes(std::uint8_t out[32], const Ge& p) {
  Fe zi = fe_invert(p.z);
  Fe x = fe_mul(p.x, zi);
  Fe y = fe_mul(p.y, zi);
  fe_tobytes(out, y);
  out[31] ^= static_cast<std::uint8_t>(fe_isnegative(x) ? 0x80 : 0x00);
}

/// Point decompression (RFC 8032 §5.1.3). Returns false on invalid input.
bool ge_frombytes(Ge& out, const std::uint8_t s[32]) {
  Fe y = fe_frombytes(s);
  bool sign = (s[31] & 0x80) != 0;

  Fe y2 = fe_sq(y);
  Fe u = fe_sub(y2, fe_one());             // y^2 - 1
  Fe v = fe_add(fe_mul(consts().d, y2), fe_one());  // d y^2 + 1

  // Candidate root: x = u v^3 (u v^7)^((p-5)/8).
  Fe v3 = fe_mul(fe_sq(v), v);
  Fe v7 = fe_mul(fe_sq(v3), v);
  Fe x = fe_mul(fe_mul(u, v3), fe_pow22523(fe_mul(u, v7)));

  Fe vx2 = fe_mul(v, fe_sq(x));
  if (!fe_eq(vx2, u)) {
    if (fe_eq(vx2, fe_neg(u))) {
      x = fe_mul(x, consts().sqrtm1);
    } else {
      return false;  // not a quadratic residue: invalid encoding
    }
  }
  if (fe_iszero(x) && sign) return false;  // -0 is non-canonical
  if (fe_isnegative(x) != sign) x = fe_neg(x);

  out.x = x;
  out.y = y;
  out.z = fe_one();
  out.t = fe_mul(x, y);
  return true;
}

// ===========================================================================
// Scalar arithmetic modulo L = 2^252 + 27742317777372353535851937790883648493.
// Simple binary reduction — clarity over speed.
// ===========================================================================

struct U512 {
  std::uint64_t w[8]{};
};

constexpr std::uint64_t kL[4] = {0x5812631a5cf5d3edULL, 0x14def9dea2f79cd6ULL,
                                 0x0000000000000000ULL, 0x1000000000000000ULL};

// r >= L (r given as 5 words to absorb the shift overflow)?
bool geq_l(const std::uint64_t r[5]) {
  if (r[4] != 0) return true;
  for (int i = 3; i >= 0; --i) {
    if (r[i] != kL[i]) return r[i] > kL[i];
  }
  return true;  // equal
}

void sub_l(std::uint64_t r[5]) {
  unsigned __int128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 d =
        (unsigned __int128)r[i] - kL[i] - (std::uint64_t)borrow;
    r[i] = (std::uint64_t)d;
    borrow = (d >> 64) & 1;  // 1 when the subtraction wrapped
  }
  r[4] -= (std::uint64_t)borrow;
}

/// x mod L for a value given as `words` little-endian 64-bit words.
void mod_l(const std::uint64_t* x, int words, std::uint8_t out[32]) {
  std::uint64_t r[5] = {0, 0, 0, 0, 0};
  for (int bit = words * 64 - 1; bit >= 0; --bit) {
    // r = r << 1 | bit
    r[4] = (r[4] << 1) | (r[3] >> 63);
    r[3] = (r[3] << 1) | (r[2] >> 63);
    r[2] = (r[2] << 1) | (r[1] >> 63);
    r[1] = (r[1] << 1) | (r[0] >> 63);
    r[0] = (r[0] << 1) | ((x[bit / 64] >> (bit % 64)) & 1);
    if (geq_l(r)) sub_l(r);
  }
  std::memcpy(out, r, 32);
}

void sc_reduce64(const Digest512& h, std::uint8_t out[32]) {
  std::uint64_t x[8];
  std::memcpy(x, h.data(), 64);
  mod_l(x, 8, out);
}

/// out = (a*b + c) mod L; inputs are 32-byte little-endian scalars.
void sc_muladd(std::uint8_t out[32], const std::uint8_t a[32],
               const std::uint8_t b[32], const std::uint8_t c[32]) {
  std::uint64_t aw[4], bw[4], cw[4];
  std::memcpy(aw, a, 32);
  std::memcpy(bw, b, 32);
  std::memcpy(cw, c, 32);

  std::uint64_t prod[9] = {};  // 8 words of a*b plus carry room for +c
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      unsigned __int128 cur =
          (unsigned __int128)aw[i] * bw[j] + prod[i + j] + (std::uint64_t)carry;
      prod[i + j] = (std::uint64_t)cur;
      carry = cur >> 64;
    }
    prod[i + 4] += (std::uint64_t)carry;
  }
  unsigned __int128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 cur =
        (unsigned __int128)prod[i] + cw[i] + (std::uint64_t)carry;
    prod[i] = (std::uint64_t)cur;
    carry = cur >> 64;
  }
  for (int i = 4; i < 9 && carry; ++i) {
    unsigned __int128 cur = (unsigned __int128)prod[i] + (std::uint64_t)carry;
    prod[i] = (std::uint64_t)cur;
    carry = cur >> 64;
  }
  mod_l(prod, 9, out);
}

/// S must be canonical (< L) per RFC 8032 verification.
bool sc_is_canonical(const std::uint8_t s[32]) {
  std::uint64_t r[5] = {0, 0, 0, 0, 0};
  std::memcpy(r, s, 32);
  return !geq_l(r);
}

const Ge& base_point() {
  // B's compressed encoding is 0x58 followed by 31 bytes of 0x66 (y = 4/5,
  // sign 0); decompression recovers it — reusing the tested code path
  // instead of transcribing coordinates.
  static const Ge b = [] {
    std::uint8_t enc[32];
    std::memset(enc, 0x66, 32);
    enc[0] = 0x58;
    Ge g;
    bool ok = ge_frombytes(g, enc);
    (void)ok;
    return g;
  }();
  return b;
}

void clamp(std::uint8_t a[32]) {
  a[0] &= 0xf8;
  a[31] &= 0x7f;
  a[31] |= 0x40;
}

}  // namespace

// ===========================================================================
// Public API (RFC 8032 §5.1.5 / §5.1.6 / §5.1.7).
// ===========================================================================

Ed25519PublicKey ed25519_public_key(const Ed25519Seed& seed) {
  Digest512 h = sha512(BytesView(seed.data(), seed.size()));
  std::uint8_t a[32];
  std::memcpy(a, h.data(), 32);
  clamp(a);
  Ge A = ge_scalarmult(base_point(), a);
  Ed25519PublicKey pub;
  ge_tobytes(pub.data(), A);
  return pub;
}

Ed25519Signature ed25519_sign(BytesView msg, const Ed25519Seed& seed,
                              const Ed25519PublicKey& public_key) {
  Digest512 h = sha512(BytesView(seed.data(), seed.size()));
  std::uint8_t a[32];
  std::memcpy(a, h.data(), 32);
  clamp(a);

  // r = SHA512(prefix || M) mod L
  Sha512 hr;
  hr.update(BytesView(h.data() + 32, 32));
  hr.update(msg);
  std::uint8_t r[32];
  sc_reduce64(hr.finish(), r);

  Ge R = ge_scalarmult(base_point(), r);
  Ed25519Signature sig{};
  ge_tobytes(sig.data(), R);

  // k = SHA512(R || A || M) mod L
  Sha512 hk;
  hk.update(BytesView(sig.data(), 32));
  hk.update(BytesView(public_key.data(), 32));
  hk.update(msg);
  std::uint8_t k[32];
  sc_reduce64(hk.finish(), k);

  // S = (r + k*a) mod L
  sc_muladd(sig.data() + 32, k, a, r);
  return sig;
}

bool ed25519_verify(BytesView msg, const Ed25519Signature& sig,
                    const Ed25519PublicKey& public_key) {
  if (!sc_is_canonical(sig.data() + 32)) return false;
  Ge A;
  if (!ge_frombytes(A, public_key.data())) return false;

  Sha512 hk;
  hk.update(BytesView(sig.data(), 32));
  hk.update(BytesView(public_key.data(), 32));
  hk.update(msg);
  std::uint8_t k[32];
  sc_reduce64(hk.finish(), k);

  // Check R == sB - kA (equivalently sB == R + kA).
  std::uint8_t s[32];
  std::memcpy(s, sig.data() + 32, 32);
  Ge sB = ge_scalarmult(base_point(), s);
  Ge kA = ge_scalarmult(ge_neg(A), k);
  Ge V = ge_add(sB, kA);
  std::uint8_t v_bytes[32];
  ge_tobytes(v_bytes, V);
  return std::memcmp(v_bytes, sig.data(), 32) == 0;
}

}  // namespace rdb::crypto
