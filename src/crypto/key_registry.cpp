#include "crypto/key_registry.h"

#include <algorithm>
#include <cstring>

#include "common/serde.h"
#include "crypto/hmac.h"

namespace rdb::crypto {

namespace {
std::uint64_t endpoint_code(Endpoint e) {
  return (static_cast<std::uint64_t>(e.kind == Endpoint::Kind::kClient) << 32) |
         e.id;
}
}  // namespace

KeyRegistry::KeyRegistry(BytesView master_secret)
    : master_(master_secret.begin(), master_secret.end()) {}

KeyRegistry::KeyRegistry(std::uint64_t seed) {
  Writer w;
  w.str("rdb-master");
  w.u64(seed);
  Digest d = sha256(BytesView(w.data()));
  master_.assign(d.data.begin(), d.data.end());
}

Bytes KeyRegistry::signing_secret(Endpoint who) const {
  Writer w;
  w.str("sign");
  w.u64(endpoint_code(who));
  Digest d = hmac_sha256(BytesView(master_), BytesView(w.data()));
  return Bytes(d.data.begin(), d.data.end());
}

AesKey KeyRegistry::pairwise_key(Endpoint a, Endpoint b) const {
  std::uint64_t ca = endpoint_code(a);
  std::uint64_t cb = endpoint_code(b);
  if (ca > cb) std::swap(ca, cb);
  Writer w;
  w.str("pair");
  w.u64(ca);
  w.u64(cb);
  Digest d = hmac_sha256(BytesView(master_), BytesView(w.data()));
  AesKey key;
  std::memcpy(key.data(), d.data.data(), key.size());
  return key;
}

}  // namespace rdb::crypto
