#include "crypto/key_registry.h"

#include <algorithm>
#include <cstring>

#include "common/serde.h"
#include "crypto/hmac.h"

namespace rdb::crypto {

namespace {
std::uint64_t endpoint_code(Endpoint e) {
  return (static_cast<std::uint64_t>(e.kind == Endpoint::Kind::kClient) << 32) |
         e.id;
}
}  // namespace

KeyRegistry::KeyRegistry(BytesView master_secret)
    : master_(master_secret.begin(), master_secret.end()) {}

KeyRegistry::KeyRegistry(std::uint64_t seed) {
  Writer w;
  w.str("rdb-master");
  w.u64(seed);
  Digest d = sha256(BytesView(w.data()));
  master_.assign(d.data.begin(), d.data.end());
}

Bytes KeyRegistry::signing_secret(Endpoint who) const {
  Writer w;
  w.str("sign");
  w.u64(endpoint_code(who));
  Digest d = hmac_sha256(BytesView(master_), BytesView(w.data()));
  return Bytes(d.data.begin(), d.data.end());
}

Ed25519PublicKey KeyRegistry::ed25519_public(Endpoint who) const {
  Bytes secret = signing_secret(who);
  Ed25519Seed seed{};
  std::copy_n(secret.begin(), std::min(secret.size(), seed.size()),
              seed.begin());
  return ed25519_public_key(seed);
}

Ed25519ExpandedKeyPtr KeyRegistry::ed25519_expanded(Endpoint who) const {
  std::uint64_t code = endpoint_code(who);
  {
    // Read-mostly fast path: a shared hold suffices for the lookup, so
    // concurrent verifiers never serialize on a cache hit.
    ReaderLock lock(ed_mutex_);
    auto it = ed_cache_.find(code);
    if (it != ed_cache_.end()) {
      ed_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  ed_misses_.fetch_add(1, std::memory_order_relaxed);
  // Derive + expand outside the lock: expansion does a field inversion and a
  // square root, and concurrent first lookups of the same peer are harmless
  // (last writer wins; both expansions are identical).
  Ed25519ExpandedKeyPtr expanded = ed25519_expand_key(ed25519_public(who));
  WriterLock lock(ed_mutex_);
  ed_cache_[code] = expanded;
  return expanded;
}

void KeyRegistry::ed25519_invalidate(Endpoint who) const {
  WriterLock lock(ed_mutex_);
  ed_cache_.erase(endpoint_code(who));
}

KeyRegistry::CacheStats KeyRegistry::ed25519_cache_stats() const {
  CacheStats s;
  s.hits = ed_hits_.load(std::memory_order_relaxed);
  s.misses = ed_misses_.load(std::memory_order_relaxed);
  return s;
}

AesKey KeyRegistry::pairwise_key(Endpoint a, Endpoint b) const {
  std::uint64_t ca = endpoint_code(a);
  std::uint64_t cb = endpoint_code(b);
  if (ca > cb) std::swap(ca, cb);
  Writer w;
  w.str("pair");
  w.u64(ca);
  w.u64(cb);
  Digest d = hmac_sha256(BytesView(master_), BytesView(w.data()));
  AesKey key;
  std::memcpy(key.data(), d.data.data(), key.size());
  return key;
}

}  // namespace rdb::crypto
