#include "crypto/key_registry.h"

#include <algorithm>
#include <cstring>

#include "common/serde.h"
#include "crypto/hmac.h"

namespace rdb::crypto {

namespace {
std::uint64_t endpoint_code(Endpoint e) {
  return (static_cast<std::uint64_t>(e.kind == Endpoint::Kind::kClient) << 32) |
         e.id;
}
}  // namespace

KeyRegistry::KeyRegistry(BytesView master_secret)
    : master_(master_secret.begin(), master_secret.end()) {}

KeyRegistry::KeyRegistry(std::uint64_t seed) {
  Writer w;
  w.str("rdb-master");
  w.u64(seed);
  Digest d = sha256(BytesView(w.data()));
  master_.assign(d.data.begin(), d.data.end());
}

Bytes KeyRegistry::signing_secret(Endpoint who) const {
  Writer w;
  w.str("sign");
  w.u64(endpoint_code(who));
  Digest d = hmac_sha256(BytesView(master_), BytesView(w.data()));
  return Bytes(d.data.begin(), d.data.end());
}

Ed25519PublicKey KeyRegistry::ed25519_public(Endpoint who) const {
  Bytes secret = signing_secret(who);
  Ed25519Seed seed{};
  std::copy_n(secret.begin(), std::min(secret.size(), seed.size()),
              seed.begin());
  return ed25519_public_key(seed);
}

Ed25519ExpandedKeyPtr KeyRegistry::ed25519_expanded(Endpoint who) const {
  std::uint64_t code = endpoint_code(who);
  {
    // Read-mostly fast path: a shared hold suffices for the lookup, so
    // concurrent verifiers never serialize on a cache hit.
    ReaderLock lock(ed_mutex_);
    auto it = ed_cache_.find(code);
    if (it != ed_cache_.end()) {
      ed_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  ed_misses_.fetch_add(1, std::memory_order_relaxed);
  // Derive + expand outside the lock: expansion does a field inversion and a
  // square root, and concurrent first lookups of the same peer are harmless
  // (last writer wins; both expansions are identical).
  Ed25519ExpandedKeyPtr expanded = ed25519_expand_key(ed25519_public(who));
  WriterLock lock(ed_mutex_);
  ed_cache_[code] = expanded;
  return expanded;
}

void KeyRegistry::ed25519_expand_many(const Endpoint* who, std::size_t n,
                                      Ed25519ExpandedKeyPtr* out) const {
  if (n == 0) return;
  ed_bulk_lookups_.fetch_add(1, std::memory_order_relaxed);
  ed_bulk_keys_.fetch_add(n, std::memory_order_relaxed);
  std::vector<std::size_t> missing;
  std::uint64_t hits = 0;
  {
    // One shared hold resolves the whole wave: after warmup every slot is a
    // hit, so the common case costs a single lock round-trip per batch.
    ReaderLock lock(ed_mutex_);
    for (std::size_t i = 0; i < n; ++i) {
      auto it = ed_cache_.find(endpoint_code(who[i]));
      if (it != ed_cache_.end()) {
        out[i] = it->second;
        ++hits;
      } else {
        out[i] = nullptr;
        missing.push_back(i);
      }
    }
  }
  if (hits) ed_hits_.fetch_add(hits, std::memory_order_relaxed);
  if (missing.empty()) return;
  ed_misses_.fetch_add(missing.size(), std::memory_order_relaxed);
  // Derive + expand misses outside the lock, deduplicating repeated
  // endpoints (a wave often carries several signatures from one peer whose
  // key is not warm yet — expand it once, not once per signature).
  for (std::size_t m = 0; m < missing.size(); ++m) {
    const std::size_t i = missing[m];
    if (out[i]) continue;  // already expanded via an earlier duplicate
    Ed25519ExpandedKeyPtr expanded = ed25519_expand_key(ed25519_public(who[i]));
    const std::uint64_t code = endpoint_code(who[i]);
    out[i] = expanded;
    for (std::size_t k = m + 1; k < missing.size(); ++k)
      if (endpoint_code(who[missing[k]]) == code) out[missing[k]] = expanded;
  }
  WriterLock lock(ed_mutex_);
  for (std::size_t i : missing) ed_cache_[endpoint_code(who[i])] = out[i];
}

void KeyRegistry::ed25519_invalidate(Endpoint who) const {
  WriterLock lock(ed_mutex_);
  ed_cache_.erase(endpoint_code(who));
}

KeyRegistry::CacheStats KeyRegistry::ed25519_cache_stats() const {
  CacheStats s;
  s.hits = ed_hits_.load(std::memory_order_relaxed);
  s.misses = ed_misses_.load(std::memory_order_relaxed);
  s.bulk_lookups = ed_bulk_lookups_.load(std::memory_order_relaxed);
  s.bulk_keys = ed_bulk_keys_.load(std::memory_order_relaxed);
  return s;
}

AesKey KeyRegistry::pairwise_key(Endpoint a, Endpoint b) const {
  std::uint64_t ca = endpoint_code(a);
  std::uint64_t cb = endpoint_code(b);
  if (ca > cb) std::swap(ca, cb);
  Writer w;
  w.str("pair");
  w.u64(ca);
  w.u64(cb);
  Digest d = hmac_sha256(BytesView(master_), BytesView(w.data()));
  AesKey key;
  std::memcpy(key.data(), d.data.data(), key.size());
  return key;
}

}  // namespace rdb::crypto
