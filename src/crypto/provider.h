// Per-node cryptographic facade: signing, verification, and digests.
//
// A CryptoProvider is instantiated with the node's own identity, the shared
// KeyRegistry, and a SchemeConfig. It picks the scheme by traffic class:
// messages exchanged with a client use client_scheme, replica-to-replica
// traffic uses replica_scheme (the paper's key crypto optimization: replicas
// never forward each other's messages, so MACs suffice — §6 "Cryptographic
// Signatures").
//
// Signatures carry a 1-byte scheme id so a verifier rejects a peer that
// downgrades the agreed scheme.
#pragma once

#include <memory>
#include <unordered_map>

#include "common/bytes.h"
#include "common/rtzone.h"
#include "common/sync.h"
#include "common/types.h"
#include "crypto/cmac.h"
#include "crypto/ed25519.h"
#include "crypto/key_registry.h"
#include "crypto/scheme.h"
#include "crypto/sha256.h"

namespace rdb::crypto {

/// One (signer, message, signature) triple for CryptoProvider::verify_batch.
/// The views must stay valid for the duration of the call.
struct VerifyItem {
  Endpoint from;
  BytesView msg;
  BytesView sig;
};

/// Counters accumulated (never reset) by CryptoProvider::verify_batch.
struct BatchVerifyStats {
  std::uint64_t ed25519_batched{0};  // sigs settled via the batch MSM path
  std::uint64_t serial{0};           // sigs settled per-item (MACs, malformed)
  std::uint64_t bisections{0};       // culprit hunts after a failed batch
};

class CryptoProvider {
 public:
  CryptoProvider(Endpoint self, const KeyRegistry& registry,
                 SchemeConfig config);

  /// Signs `msg` for delivery to `to`. For MAC schemes the tag depends on the
  /// (self, to) pairwise key; for DS schemes the signature is addressee-
  /// independent (sign once, broadcast everywhere).
  Bytes sign(Endpoint to, BytesView msg) const;

  /// Verifies `sig` on `msg` purportedly produced by `from` for us.
  bool verify(Endpoint from, BytesView msg, BytesView sig) const;

  /// Verifies a wave of signatures in one pass. Well-formed Ed25519 items
  /// are checked with ONE randomized multi-scalar multiplication (all
  /// expanded keys resolved through a single bulk registry lookup); items
  /// under other schemes — or malformed ones — fall back to per-item
  /// verify(). verdicts[i] always matches what verify() would return for
  /// items[i]. Returns the number of valid signatures.
  ///
  /// HOT BARRIER: the per-wave scratch (points, scalars, verdict staging)
  /// is allocated ONCE per flushed wave and amortized over every signature
  /// in the burst — the whole point of the batch path is trading one
  /// setup for up to verify_batch_size per-item verifies.
  RDB_HOT_BARRIER
  std::size_t verify_batch(const VerifyItem* items, std::size_t n,
                           bool* verdicts,
                           BatchVerifyStats* stats = nullptr) const;

  /// The scheme used on the link between us and `peer`.
  SignatureScheme scheme_for(Endpoint peer) const;

  /// Wire size of a signature on the link to `peer` (for message sizing).
  std::size_t signature_size(Endpoint peer) const;

  Digest digest(BytesView msg) const { return sha256(msg); }

  Endpoint self() const { return self_; }
  const SchemeConfig& config() const { return config_; }

 private:
  Bytes hmac_sim_sign(SignatureScheme s, Endpoint signer, BytesView msg) const;
  /// HOT BARRIER: allocates a CMAC key schedule only on the FIRST message
  /// to a given peer; every later call returns the memoized context, so the
  /// steady state is a lock-shared map lookup with zero allocation.
  RDB_HOT_BARRIER
  const CmacContext& cmac_for(Endpoint peer) const;
  static Ed25519Seed seed_of(const Bytes& secret);

  Endpoint self_;
  const KeyRegistry* registry_;
  SchemeConfig config_;
  Bytes own_secret_;
  Ed25519Seed own_ed_seed_{};
  Ed25519PublicKey own_ed_public_{};
  // Lazily built per-peer CMAC contexts (key expansion amortized). Peer
  // Ed25519 keys are NOT cached here: the KeyRegistry memoizes the expanded
  // form (decompressed point + odd-multiples table) process-wide, so every
  // provider sharing a registry shares one expansion per peer.
  //
  // A replica signs from several output threads concurrently, so the lazy
  // insert is guarded by cmac_mu_. CmacContext::tag() itself is const and
  // stateless, and contexts are heap-allocated and never erased, so the
  // returned reference stays valid (and usable lock-free) after insertion —
  // which is why the map is guarded but its POINTEES are deliberately not.
  mutable Mutex cmac_mu_{LockRank::kCryptoProvider, "CryptoProvider.cmac"};
  mutable std::unordered_map<std::uint64_t, std::unique_ptr<CmacContext>>
      cmac_cache_ RDB_GUARDED_BY(cmac_mu_);
};

}  // namespace rdb::crypto
