#include "crypto/cmac.h"

#include <cstring>

namespace rdb::crypto {

namespace {

// Left-shift a 128-bit block by one bit; returns the bit shifted out.
std::uint8_t shift_left(AesBlock& b) {
  std::uint8_t carry = 0;
  for (int i = 15; i >= 0; --i) {
    std::uint8_t next_carry = static_cast<std::uint8_t>((b[i] & 0x80) ? 1 : 0);
    b[i] = static_cast<std::uint8_t>((b[i] << 1) | carry);
    carry = next_carry;
  }
  return carry;
}

// Subkey derivation per SP 800-38B: K1 = L<<1 (xor Rb on carry), K2 likewise.
AesBlock derive_subkey(const AesBlock& in) {
  AesBlock out = in;
  std::uint8_t carry = shift_left(out);
  if (carry) out[15] ^= 0x87;
  return out;
}

}  // namespace

CmacContext::CmacContext(const AesKey& key) : cipher_(key) {
  AesBlock zero{};
  AesBlock l = cipher_.encrypt(zero);
  k1_ = derive_subkey(l);
  k2_ = derive_subkey(k1_);
}

AesBlock CmacContext::tag(BytesView data) const {
  const std::size_t n = data.size();
  // Number of 16-byte blocks, with an empty message counted as one block.
  std::size_t blocks = (n + 15) / 16;
  bool complete = (n > 0) && (n % 16 == 0);
  if (blocks == 0) blocks = 1;

  AesBlock x{};
  for (std::size_t i = 0; i + 1 < blocks; ++i) {
    for (int j = 0; j < 16; ++j) x[j] ^= data[i * 16 + j];
    x = cipher_.encrypt(x);
  }

  AesBlock last{};
  std::size_t last_off = (blocks - 1) * 16;
  if (complete) {
    for (int j = 0; j < 16; ++j)
      last[j] = static_cast<std::uint8_t>(data[last_off + j] ^ k1_[j]);
  } else {
    std::size_t rem = n - last_off;
    for (std::size_t j = 0; j < rem; ++j) last[j] = data[last_off + j];
    last[rem] = 0x80;
    for (int j = 0; j < 16; ++j) last[j] ^= k2_[j];
  }

  for (int j = 0; j < 16; ++j) x[j] ^= last[j];
  return cipher_.encrypt(x);
}

AesBlock cmac_aes128(const AesKey& key, BytesView data) {
  return CmacContext(key).tag(data);
}

}  // namespace rdb::crypto
