#include "crypto/provider.h"

#include <algorithm>

#include "common/serde.h"
#include "crypto/hmac.h"

namespace rdb::crypto {

namespace {
std::uint64_t peer_code(Endpoint e) {
  return (static_cast<std::uint64_t>(e.kind == Endpoint::Kind::kClient) << 32) |
         e.id;
}
}  // namespace

CryptoProvider::CryptoProvider(Endpoint self, const KeyRegistry& registry,
                               SchemeConfig config)
    : self_(self), registry_(&registry), config_(config) {
  own_secret_ = registry.signing_secret(self);
  own_ed_seed_ = seed_of(own_secret_);
  own_ed_public_ = ed25519_public_key(own_ed_seed_);
}

Ed25519Seed CryptoProvider::seed_of(const Bytes& secret) {
  Ed25519Seed seed{};
  std::copy_n(secret.begin(),
              std::min(secret.size(), seed.size()), seed.begin());
  return seed;
}

SignatureScheme CryptoProvider::scheme_for(Endpoint peer) const {
  bool client_link = self_.kind == Endpoint::Kind::kClient ||
                     peer.kind == Endpoint::Kind::kClient;
  return client_link ? config_.client_scheme : config_.replica_scheme;
}

std::size_t CryptoProvider::signature_size(Endpoint peer) const {
  // +1 for the scheme id byte.
  auto s = scheme_for(peer);
  return s == SignatureScheme::kNone ? 1 : scheme_cost(s).sig_bytes + 1;
}

const CmacContext& CryptoProvider::cmac_for(Endpoint peer) const {
  std::uint64_t code = peer_code(peer);
  // Multiple output threads sign concurrently; the lazy insert must be
  // serialized. The context itself is immutable after construction, so the
  // returned reference is safe to use outside the lock.
  MutexLock lock(cmac_mu_);
  auto it = cmac_cache_.find(code);
  if (it == cmac_cache_.end()) {
    it = cmac_cache_
             .emplace(code, std::make_unique<CmacContext>(
                                registry_->pairwise_key(self_, peer)))
             .first;
  }
  return *it->second;
}

Bytes CryptoProvider::hmac_sim_sign(SignatureScheme s, Endpoint signer,
                                    BytesView msg) const {
  // Functional simulation of an RSA signature: a keyed hash bound to the
  // signer's registry secret and domain-separated by scheme, padded to the
  // scheme's wire size so message sizes are faithful (DESIGN.md §2 — only
  // RSA remains simulated; Ed25519 is the real implementation).
  Bytes secret = signer == self_ ? own_secret_
                                 : registry_->signing_secret(signer);
  Writer w;
  w.u8(static_cast<std::uint8_t>(s));
  w.raw(msg);
  Digest d = hmac_sha256(BytesView(secret), BytesView(w.data()));

  Bytes sig;
  sig.reserve(scheme_cost(s).sig_bytes + 1);
  sig.push_back(static_cast<std::uint8_t>(s));
  sig.insert(sig.end(), d.data.begin(), d.data.end());
  sig.resize(scheme_cost(s).sig_bytes + 1, 0xA5);
  return sig;
}

Bytes CryptoProvider::sign(Endpoint to, BytesView msg) const {
  SignatureScheme s = scheme_for(to);
  switch (s) {
    case SignatureScheme::kNone:
      return Bytes{static_cast<std::uint8_t>(s)};
    case SignatureScheme::kCmacAes: {
      AesBlock tag = cmac_for(to).tag(msg);
      Bytes sig;
      sig.reserve(17);
      sig.push_back(static_cast<std::uint8_t>(s));
      sig.insert(sig.end(), tag.begin(), tag.end());
      return sig;
    }
    case SignatureScheme::kEd25519: {
      Ed25519Signature es = ed25519_sign(msg, own_ed_seed_, own_ed_public_);
      Bytes sig;
      sig.reserve(es.size() + 1);
      sig.push_back(static_cast<std::uint8_t>(s));
      sig.insert(sig.end(), es.begin(), es.end());
      return sig;
    }
    case SignatureScheme::kRsa2048:
      return hmac_sim_sign(s, self_, msg);
  }
  return {};
}

bool CryptoProvider::verify(Endpoint from, BytesView msg,
                            BytesView sig) const {
  SignatureScheme expected = scheme_for(from);
  if (sig.empty()) return false;
  if (sig[0] != static_cast<std::uint8_t>(expected)) return false;

  switch (expected) {
    case SignatureScheme::kNone:
      return sig.size() == 1;
    case SignatureScheme::kCmacAes: {
      if (sig.size() != 17) return false;
      AesBlock tag = cmac_for(from).tag(msg);
      return ct_equal(BytesView(tag), sig.subspan(1));
    }
    case SignatureScheme::kEd25519: {
      if (sig.size() != 65) return false;
      Ed25519Signature es;
      std::copy(sig.begin() + 1, sig.end(), es.begin());
      // Registry-cached expansion: the decompression (field inversion +
      // square root) and odd-multiples table build run once per peer
      // process-wide, not once per message.
      Ed25519ExpandedKeyPtr key = registry_->ed25519_expanded(from);
      if (!key) return false;
      return ed25519_verify_expanded(msg, es, *key);
    }
    case SignatureScheme::kRsa2048: {
      Bytes expected_sig = hmac_sim_sign(expected, from, msg);
      return ct_equal(BytesView(expected_sig), sig);
    }
  }
  return false;
}

std::size_t CryptoProvider::verify_batch(const VerifyItem* items,
                                         std::size_t n, bool* verdicts,
                                         BatchVerifyStats* stats) const {
  BatchVerifyStats local;
  std::vector<std::size_t> ed_idx;
  ed_idx.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const VerifyItem& it = items[i];
    const bool ed_shaped =
        scheme_for(it.from) == SignatureScheme::kEd25519 &&
        it.sig.size() == 65 &&
        it.sig[0] == static_cast<std::uint8_t>(SignatureScheme::kEd25519);
    if (ed_shaped) {
      ed_idx.push_back(i);
    } else {
      // MAC schemes have no batch form (each tag is a full AES pass) and
      // malformed Ed25519 framing is rejected by verify() before any curve
      // math — both settle item-by-item.
      verdicts[i] = verify(it.from, it.msg, it.sig);
      ++local.serial;
    }
  }
  if (!ed_idx.empty()) {
    // One bulk registry pass resolves every A_i table; the shared_ptrs pin
    // the expansions for the duration of the MSM.
    std::vector<Endpoint> eps;
    eps.reserve(ed_idx.size());
    for (std::size_t i : ed_idx) eps.push_back(items[i].from);
    std::vector<Ed25519ExpandedKeyPtr> keys(eps.size());
    registry_->ed25519_expand_many(eps.data(), eps.size(), keys.data());
    std::vector<Ed25519BatchItem> batch(ed_idx.size());
    for (std::size_t j = 0; j < ed_idx.size(); ++j) {
      const VerifyItem& it = items[ed_idx[j]];
      batch[j].msg = it.msg;
      batch[j].sig = it.sig.data() + 1;  // skip the scheme id byte
      batch[j].key = keys[j].get();      // nullptr key -> verdict false
    }
    // ed25519_verify_batch wants bool*; vector<bool> is packed, so run
    // through a small contiguous bool buffer.
    std::unique_ptr<bool[]> raw(new bool[ed_idx.size()]);
    Ed25519BatchStats bs;
    ed25519_verify_batch(batch.data(), batch.size(), raw.get(), &bs);
    for (std::size_t j = 0; j < ed_idx.size(); ++j)
      verdicts[ed_idx[j]] = raw[j];
    local.ed25519_batched += ed_idx.size();
    local.bisections += bs.bisections;
  }
  if (stats != nullptr) {
    stats->ed25519_batched += local.ed25519_batched;
    stats->serial += local.serial;
    stats->bisections += local.bisections;
  }
  std::size_t valid = 0;
  for (std::size_t i = 0; i < n; ++i) valid += verdicts[i] ? 1u : 0u;
  return valid;
}

}  // namespace rdb::crypto
