#include "crypto/hmac.h"

#include <array>
#include <cstring>

namespace rdb::crypto {

Digest hmac_sha256(BytesView key, BytesView data) {
  constexpr std::size_t kBlock = 64;
  std::array<std::uint8_t, kBlock> k0{};

  if (key.size() > kBlock) {
    Digest kd = sha256(key);
    std::memcpy(k0.data(), kd.data.data(), kd.data.size());
  } else {
    std::memcpy(k0.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, kBlock> ipad, opad;
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k0[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k0[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(BytesView(ipad));
  inner.update(data);
  Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(BytesView(opad));
  outer.update(BytesView(inner_digest.data));
  return outer.finish();
}

}  // namespace rdb::crypto
