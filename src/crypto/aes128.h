// AES-128 block cipher (FIPS 197), from scratch. Only encryption is needed
// here (CMAC uses the forward direction); decryption is provided for
// completeness and round-trip testing.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace rdb::crypto {

using AesKey = std::array<std::uint8_t, 16>;
using AesBlock = std::array<std::uint8_t, 16>;

class Aes128 {
 public:
  explicit Aes128(const AesKey& key) { expand_key(key); }

  AesBlock encrypt(const AesBlock& plaintext) const;
  AesBlock decrypt(const AesBlock& ciphertext) const;

 private:
  void expand_key(const AesKey& key);
  // 11 round keys of 16 bytes each.
  std::array<std::uint8_t, 176> round_keys_{};
};

}  // namespace rdb::crypto
