#include "crypto/aes128.h"

#include <cstring>

namespace rdb::crypto {

namespace {

// GF(2^8) multiply with the AES polynomial x^8 + x^4 + x^3 + x + 1.
std::uint8_t gmul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    bool hi = a & 0x80;
    a = static_cast<std::uint8_t>(a << 1);
    if (hi) a ^= 0x1B;
    b >>= 1;
  }
  return p;
}

struct SboxTables {
  std::uint8_t sbox[256];
  std::uint8_t inv_sbox[256];

  SboxTables() {
    // Build the S-box from the multiplicative inverse + affine transform,
    // rather than a typed-in table, so a typo cannot corrupt it.
    std::uint8_t inverse[256];
    inverse[0] = 0;
    for (int a = 1; a < 256; ++a) {
      for (int b = 1; b < 256; ++b) {
        if (gmul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)) ==
            1) {
          inverse[a] = static_cast<std::uint8_t>(b);
          break;
        }
      }
    }
    for (int i = 0; i < 256; ++i) {
      std::uint8_t x = inverse[i];
      std::uint8_t y = static_cast<std::uint8_t>(
          x ^ rotl(x, 1) ^ rotl(x, 2) ^ rotl(x, 3) ^ rotl(x, 4) ^ 0x63);
      sbox[i] = y;
      inv_sbox[y] = static_cast<std::uint8_t>(i);
    }
  }

  static std::uint8_t rotl(std::uint8_t x, int n) {
    return static_cast<std::uint8_t>((x << n) | (x >> (8 - n)));
  }
};

const SboxTables& tables() {
  static const SboxTables t;
  return t;
}

constexpr std::uint8_t kRcon[10] = {0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1B, 0x36};

}  // namespace

void Aes128::expand_key(const AesKey& key) {
  const auto& sbox = tables().sbox;
  std::memcpy(round_keys_.data(), key.data(), 16);
  for (int i = 4; i < 44; ++i) {
    std::uint8_t temp[4];
    std::memcpy(temp, round_keys_.data() + (i - 1) * 4, 4);
    if (i % 4 == 0) {
      // RotWord + SubWord + Rcon.
      std::uint8_t t0 = temp[0];
      temp[0] = static_cast<std::uint8_t>(sbox[temp[1]] ^ kRcon[i / 4 - 1]);
      temp[1] = sbox[temp[2]];
      temp[2] = sbox[temp[3]];
      temp[3] = sbox[t0];
    }
    for (int j = 0; j < 4; ++j)
      round_keys_[i * 4 + j] =
          static_cast<std::uint8_t>(round_keys_[(i - 4) * 4 + j] ^ temp[j]);
  }
}

AesBlock Aes128::encrypt(const AesBlock& plaintext) const {
  const auto& sbox = tables().sbox;
  std::uint8_t s[16];
  for (int i = 0; i < 16; ++i) s[i] = plaintext[i] ^ round_keys_[i];

  for (int round = 1; round <= 10; ++round) {
    // SubBytes.
    for (auto& b : s) b = sbox[b];
    // ShiftRows (state is column-major: s[col*4 + row]).
    std::uint8_t t[16];
    for (int col = 0; col < 4; ++col)
      for (int row = 0; row < 4; ++row)
        t[col * 4 + row] = s[((col + row) % 4) * 4 + row];
    std::memcpy(s, t, 16);
    // MixColumns (skipped in the final round).
    if (round != 10) {
      for (int col = 0; col < 4; ++col) {
        std::uint8_t* c = s + col * 4;
        std::uint8_t a0 = c[0], a1 = c[1], a2 = c[2], a3 = c[3];
        c[0] = static_cast<std::uint8_t>(gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3);
        c[1] = static_cast<std::uint8_t>(a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3);
        c[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3));
        c[3] = static_cast<std::uint8_t>(gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2));
      }
    }
    // AddRoundKey.
    for (int i = 0; i < 16; ++i) s[i] ^= round_keys_[round * 16 + i];
  }

  AesBlock out;
  std::memcpy(out.data(), s, 16);
  return out;
}

AesBlock Aes128::decrypt(const AesBlock& ciphertext) const {
  const auto& inv_sbox = tables().inv_sbox;
  std::uint8_t s[16];
  for (int i = 0; i < 16; ++i) s[i] = ciphertext[i] ^ round_keys_[160 + i];

  for (int round = 9; round >= 0; --round) {
    // InvShiftRows.
    std::uint8_t t[16];
    for (int col = 0; col < 4; ++col)
      for (int row = 0; row < 4; ++row)
        t[((col + row) % 4) * 4 + row] = s[col * 4 + row];
    std::memcpy(s, t, 16);
    // InvSubBytes.
    for (auto& b : s) b = inv_sbox[b];
    // AddRoundKey.
    for (int i = 0; i < 16; ++i) s[i] ^= round_keys_[round * 16 + i];
    // InvMixColumns (skipped before the first round's key was added).
    if (round != 0) {
      for (int col = 0; col < 4; ++col) {
        std::uint8_t* c = s + col * 4;
        std::uint8_t a0 = c[0], a1 = c[1], a2 = c[2], a3 = c[3];
        c[0] = static_cast<std::uint8_t>(gmul(a0, 14) ^ gmul(a1, 11) ^
                                         gmul(a2, 13) ^ gmul(a3, 9));
        c[1] = static_cast<std::uint8_t>(gmul(a0, 9) ^ gmul(a1, 14) ^
                                         gmul(a2, 11) ^ gmul(a3, 13));
        c[2] = static_cast<std::uint8_t>(gmul(a0, 13) ^ gmul(a1, 9) ^
                                         gmul(a2, 14) ^ gmul(a3, 11));
        c[3] = static_cast<std::uint8_t>(gmul(a0, 11) ^ gmul(a1, 13) ^
                                         gmul(a2, 9) ^ gmul(a3, 14));
      }
    }
  }

  AesBlock out;
  std::memcpy(out.data(), s, 16);
  return out;
}

}  // namespace rdb::crypto
