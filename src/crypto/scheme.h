// Signature schemes and their calibrated CPU cost model.
//
// SUBSTITUTION NOTE (see DESIGN.md §2): the symmetric primitives (SHA-256,
// HMAC, AES-CMAC) are real implementations in this repo. The asymmetric
// schemes (ED25519, RSA-2048) are *functionally* simulated with keyed hashes
// through a trusted key registry — which preserves message/signer binding —
// while their throughput-relevant properties (sign/verify CPU cost and
// signature size) are charged from the calibrated table below. The paper's
// Figure 13 is a comparison of exactly these costs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace rdb::crypto {

enum class SignatureScheme : std::uint8_t {
  kNone = 0,     // no authentication (Figure 13's "no signature" baseline)
  kCmacAes = 1,  // AES-CMAC with pairwise keys (replica<->replica, §5.1)
  kEd25519 = 2,  // digital signature, client<->replica default (§5.1)
  kRsa2048 = 3,  // digital signature, RSA variant (Figure 13)
};

struct SchemeCost {
  std::uint64_t sign_ns;    // CPU time to produce one signature
  std::uint64_t verify_ns;  // CPU time to verify one signature
  std::size_t sig_bytes;    // wire size of the signature/tag
};

/// Calibrated single-core costs on the paper's c2 (Cascade Lake @3.8GHz)
/// class of hardware. CMAC assumes AES-NI; ED25519 matches libsodium-class
/// implementations; RSA-2048's private-key operation dominates its sign cost.
constexpr SchemeCost scheme_cost(SignatureScheme s) {
  switch (s) {
    case SignatureScheme::kNone:
      return {0, 0, 0};
    case SignatureScheme::kCmacAes:
      return {400, 400, 16};
    case SignatureScheme::kEd25519:
      // Re-calibrated for the windowed-fixed-base / double-scalar hot path
      // (radix-256 comb signing, Shamir-interleaved verification with a
      // cached expanded key — docs/crypto.md). Scaled to a 3.8GHz core from
      // the measured old-vs-new ratios in bench_crypto / micro_primitives;
      // regenerate via `bench_crypto --out BENCH_crypto.json` and
      // `micro_primitives --benchmark_filter=Ed25519`.
      return {6'000, 9'000, 64};
    case SignatureScheme::kRsa2048:
      // RSA-2048: the private-key (sign) operation dominates.
      return {800'000, 25'000, 256};
  }
  return {0, 0, 0};
}

constexpr std::string_view scheme_name(SignatureScheme s) {
  switch (s) {
    case SignatureScheme::kNone:
      return "none";
    case SignatureScheme::kCmacAes:
      return "cmac-aes";
    case SignatureScheme::kEd25519:
      return "ed25519";
    case SignatureScheme::kRsa2048:
      return "rsa-2048";
  }
  return "?";
}

/// Cost of hashing `n` bytes with SHA-256 (calibrated ~ 2.5 GB/s single
/// core, plus fixed setup). Used by the simulator to charge digest creation.
constexpr std::uint64_t sha256_cost_ns(std::size_t n) {
  return 150 + static_cast<std::uint64_t>(n) * 2 / 5;
}

/// Which schemes the two traffic classes use. The paper's standard setup is
/// {client = ED25519, replica = CMAC} (§5.1); Figure 13 sweeps the rest.
struct SchemeConfig {
  SignatureScheme client_scheme{SignatureScheme::kEd25519};
  SignatureScheme replica_scheme{SignatureScheme::kCmacAes};

  static constexpr SchemeConfig standard() { return {}; }
  static constexpr SchemeConfig none() {
    return {SignatureScheme::kNone, SignatureScheme::kNone};
  }
  static constexpr SchemeConfig all_ed25519() {
    return {SignatureScheme::kEd25519, SignatureScheme::kEd25519};
  }
  static constexpr SchemeConfig all_rsa() {
    return {SignatureScheme::kRsa2048, SignatureScheme::kRsa2048};
  }
};

}  // namespace rdb::crypto
