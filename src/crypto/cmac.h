// CMAC with AES-128 (NIST SP 800-38B / RFC 4493). This is the MAC the paper
// uses for replica-to-replica authentication ("CMAC and AES", §5.1).
#pragma once

#include "common/bytes.h"
#include "crypto/aes128.h"

namespace rdb::crypto {

/// 16-byte CMAC tag of `data` under `key`.
AesBlock cmac_aes128(const AesKey& key, BytesView data);

/// Reusable CMAC context: amortizes key expansion and subkey derivation
/// across tags, which is what a replica does with each pairwise session key.
class CmacContext {
 public:
  explicit CmacContext(const AesKey& key);

  AesBlock tag(BytesView data) const;

 private:
  Aes128 cipher_;
  AesBlock k1_{};
  AesBlock k2_{};
};

}  // namespace rdb::crypto
