// Ed25519 signatures (RFC 8032), implemented from scratch: radix-2^51 field
// arithmetic over GF(2^255-19), twisted-Edwards point arithmetic in extended /
// P1P1 / cached coordinates, and scalar arithmetic modulo the group order L.
// Tested against the RFC 8032 vectors and cross-checked against retained
// reference (binary double-and-add) implementations.
//
// Hot-path design (docs/crypto.md has the full story):
//   * signing uses a precomputed radix-256 fixed-base table (32 windows x
//     255 odd+even multiples of B in affine precomp coordinates), built once
//     at startup — no doublings at all on the signing path;
//   * verification runs ONE interleaved double-scalar multiplication
//     [S]B - [k]A (Shamir's trick with signed sliding-window NAF: width-9
//     digits against the precomputed B table, width-5 digits against a
//     per-key table of odd multiples of A);
//   * point decompression and the per-key odd-multiples table are cacheable
//     via Ed25519ExpandedKey, so the field inversion + square root in
//     ge_frombytes runs once per peer instead of once per message;
//   * scalar reduction mod L uses Barrett reduction (the reference binary
//     shift-subtract reduction is retained for cross-checking).
//
// Verification is *cofactorless*: accept iff compress([S]B - [k]A) equals
// the signature's R bytes byte-for-byte. Non-canonical public-key encodings
// (y >= p) and small-order A (8[A] = identity) are rejected up front;
// non-canonical R encodings can never verify because the comparison is
// against a canonical compression.
#pragma once

#include <array>
#include <memory>
#include <optional>

#include "common/bytes.h"

namespace rdb::crypto {

using Ed25519Seed = std::array<std::uint8_t, 32>;       // RFC 8032 private key
using Ed25519PublicKey = std::array<std::uint8_t, 32>;  // compressed point A
using Ed25519Signature = std::array<std::uint8_t, 64>;  // R || S

/// Derives the public key from a 32-byte seed.
Ed25519PublicKey ed25519_public_key(const Ed25519Seed& seed);

/// Signs `msg` with the given seed (public key passed to avoid re-deriving).
Ed25519Signature ed25519_sign(BytesView msg, const Ed25519Seed& seed,
                              const Ed25519PublicKey& public_key);

/// Verifies sig on msg under public_key. Rejects non-canonical S (>= L),
/// non-canonical public-key encodings (y >= p), small-order public keys,
/// and undecodable points. Internally consults a small process-wide cache
/// of decompressed keys, so repeated verification under the same key skips
/// decompression.
bool ed25519_verify(BytesView msg, const Ed25519Signature& sig,
                    const Ed25519PublicKey& public_key);

/// A public key decompressed and expanded into the per-key odd-multiples
/// table used by the interleaved double-scalar multiplication. Expansion is
/// the natural unit of caching: it performs the field inversion / square
/// root of decompression plus the table build exactly once.
struct Ed25519ExpandedKey;  // opaque; defined in ed25519.cpp
using Ed25519ExpandedKeyPtr = std::shared_ptr<const Ed25519ExpandedKey>;

/// Decompresses, validates (canonical encoding, on curve, not small-order)
/// and expands a public key. Returns nullptr when the key must be rejected;
/// a non-null expanded key always came from a valid encoding.
Ed25519ExpandedKeyPtr ed25519_expand_key(const Ed25519PublicKey& public_key);

/// Verifies against a pre-expanded key: identical accept/reject behaviour to
/// ed25519_verify (the expansion already enforced the key-level checks), but
/// skips decompression and table building entirely.
bool ed25519_verify_expanded(BytesView msg, const Ed25519Signature& sig,
                             const Ed25519ExpandedKey& key);

/// One signature in a batch-verification wave. `sig` points at 64 bytes
/// (R || S) that must stay valid for the duration of the call; `key` is the
/// signer's pre-expanded public key. A nullptr key or sig marks the item
/// invalid without touching the curve math.
struct Ed25519BatchItem {
  BytesView msg;
  const std::uint8_t* sig{nullptr};
  const Ed25519ExpandedKey* key{nullptr};
};

/// Counters accumulated (never reset) by ed25519_verify_batch.
struct Ed25519BatchStats {
  std::uint64_t msm_checks{0};        // multi-scalar multiplications run
  std::uint64_t bisections{0};        // splits taken hunting culprits
  std::uint64_t serial_fallbacks{0};  // items settled by serial verification
};

/// True batch verification (randomized linear combination): samples an
/// independent 128-bit odd randomizer z_i per signature and checks
///
///   [-(Σ z_i s_i) mod L]B + Σ [z_i h_i mod L]A_i + Σ [z_i]R_i == identity
///
/// with ONE interleaved multi-scalar multiplication — the comb table serves
/// the aggregated B term, each item's expanded key serves its A_i term, and
/// the per-item R_i odd-multiples tables are normalized to affine with a
/// single field inversion (Montgomery's trick). When the combined check
/// fails, the wave is bisected deterministically (midpoint splits) until the
/// culprits are isolated; leaves of size <= 2 fall back to the serial
/// equation, so accept/reject matches serial ed25519_verify item-for-item.
///
/// Fills verdicts[0..n) and returns the number of valid signatures.
/// docs/crypto.md §"Batch verification" covers soundness (why 128-bit
/// unpredictable randomizers, cofactor handling) and fallback semantics.
std::size_t ed25519_verify_batch(const Ed25519BatchItem* items, std::size_t n,
                                 bool* verdicts,
                                 Ed25519BatchStats* stats = nullptr);

namespace detail {
// Reference implementations (the seed's binary double-and-add path and
// shift-subtract scalar reduction), retained for cross-check tests and
// old-vs-new benchmarking. Not used on any hot path.

/// Compressed [s]B via binary double-and-add (reference).
void scalarmult_base_ref(std::uint8_t out[32], const std::uint8_t scalar[32]);
/// Compressed [s]B via the precomputed radix-256 fixed-base table.
void scalarmult_base(std::uint8_t out[32], const std::uint8_t scalar[32]);

/// 512-bit -> mod-L reduction, reference (binary shift-subtract).
void sc_reduce512_ref(const std::uint8_t in[64], std::uint8_t out[32]);
/// 512-bit -> mod-L reduction, Barrett.
void sc_reduce512(const std::uint8_t in[64], std::uint8_t out[32]);

/// Reference sign/verify (two full binary scalar multiplications, no
/// caching, no canonicality/small-order key checks — the seed behaviour).
Ed25519Signature sign_ref(BytesView msg, const Ed25519Seed& seed,
                          const Ed25519PublicKey& public_key);
bool verify_ref(BytesView msg, const Ed25519Signature& sig,
                const Ed25519PublicKey& public_key);
}  // namespace detail

}  // namespace rdb::crypto
