// Ed25519 signatures (RFC 8032), implemented from scratch: radix-2^51 field
// arithmetic over GF(2^255-19), unified twisted-Edwards point addition in
// extended coordinates, binary scalar multiplication, and scalar arithmetic
// modulo the group order L. Tested against the RFC 8032 vectors.
//
// The implementation favours clarity and auditability over speed (simple
// double-and-add, generic exponentiation for inversion/square roots, curve
// constants computed at startup instead of transcribed): one sign or verify
// costs a few hundred microseconds — fine for the threaded runtime, while
// the discrete-event fabric charges calibrated costs of production-grade
// implementations (crypto/scheme.h).
#pragma once

#include <array>
#include <optional>

#include "common/bytes.h"

namespace rdb::crypto {

using Ed25519Seed = std::array<std::uint8_t, 32>;       // RFC 8032 private key
using Ed25519PublicKey = std::array<std::uint8_t, 32>;  // compressed point A
using Ed25519Signature = std::array<std::uint8_t, 64>;  // R || S

/// Derives the public key from a 32-byte seed.
Ed25519PublicKey ed25519_public_key(const Ed25519Seed& seed);

/// Signs `msg` with the given seed (public key passed to avoid re-deriving).
Ed25519Signature ed25519_sign(BytesView msg, const Ed25519Seed& seed,
                              const Ed25519PublicKey& public_key);

/// Verifies sig on msg under public_key. Rejects non-canonical S (>= L) and
/// undecodable points.
bool ed25519_verify(BytesView msg, const Ed25519Signature& sig,
                    const Ed25519PublicKey& public_key);

}  // namespace rdb::crypto
