// Ablations for two §6 observations that have no dedicated figure:
//
//  (a) Out-of-order consensus (§4.5): "Out-of-order processing of client
//      transactions can help gain 60% more throughput." We cap the number
//      of concurrent consensus rounds the primary allows — 1 is the strict
//      serial design the paper argues against, 0 is ResilientDB's
//      unbounded out-of-order pipeline.
//
//  (b) Decoupled execution (§3 "Integrated Ordering and Execution"):
//      "Decoupling execution from ordering can increase throughput by
//      9.5%." Compare the worker executing inline (0E) with a dedicated
//      execute thread (1E), at the same batching depth.
#include <string>

#include "api/experiment_io.h"

using namespace rdb::simfab;

int main() {
  print_figure_header(
      "Ablation A: in-flight consensus cap (16 replicas, out-of-order vs "
      "strict ordering)");
  for (std::uint32_t cap : {1u, 2u, 4u, 8u, 16u, 0u}) {
    FabricConfig cfg;
    cfg.replicas = 16;
    cfg.max_inflight_batches = cap;
    if (cap != 0 && cap <= 2) {
      // Serial consensus is latency-bound; longer horizon for steady state.
      cfg.warmup_ns = 3'000'000'000;
      cfg.measure_ns = 4'000'000'000;
    }
    apply_bench_mode(cfg);
    auto r = run_experiment(cfg);
    print_row("PBFT",
              cap == 0 ? "unbounded (OOO)" : "inflight<=" + std::to_string(cap),
              r);
  }

  print_figure_header(
      "Ablation B: integrated vs decoupled execution (16 replicas, "
      "monolithic worker otherwise — the paper's 0B0E vs 0B1E step)");
  for (std::uint32_t exec_threads : {0u, 1u}) {
    FabricConfig cfg;
    cfg.replicas = 16;
    cfg.batch_threads = 0;  // keep batching on the worker: isolate execution
    cfg.execute_threads = exec_threads;
    apply_bench_mode(cfg);
    auto r = run_experiment(cfg);
    print_row("PBFT", exec_threads == 0 ? "integrated (0E)" : "decoupled (1E)",
              r);
  }
  return 0;
}
