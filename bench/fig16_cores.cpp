// Figure 16: hardware cores per replica (1, 2, 4, 8), 16 replicas. With
// fewer cores the ~9-thread pipeline contends for the CPU and throughput
// collapses toward aggregate-capacity-bound.
//
// Paper: 8-core machines deliver ~8.92x the throughput of 1-core machines.
#include <string>

#include "api/experiment_io.h"

using namespace rdb::simfab;

int main() {
  print_figure_header("Figure 16: hardware cores per replica (16 replicas)");

  for (std::uint32_t cores : {1u, 2u, 4u, 8u}) {
    FabricConfig cfg;
    cfg.replicas = 16;
    cfg.cores = cores;
    if (cores == 1) {
      cfg.warmup_ns = 2'000'000'000;
      cfg.measure_ns = 3'000'000'000;
    }
    apply_bench_mode(cfg);
    auto r = run_experiment(cfg);
    print_row("PBFT", std::to_string(cores) + " cores", r);
  }
  return 0;
}
