// Figure 7: upper-bound measurements — no consensus, no inter-replica
// communication. "No Execution": the primary echoes every client request.
// "Execution": the primary executes the request first. Two threads work
// independently with no ordering.
//
// Paper: up to ~500K txn/s and latency up to ~0.25 s.
#include <string>

#include "api/experiment_io.h"

using namespace rdb::simfab;

int main() {
  print_figure_header(
      "Figure 7: upper bound without consensus (primary only)");

  for (std::uint64_t clients : {10'000ull, 20'000ull, 40'000ull, 80'000ull}) {
    FabricConfig cfg;
    cfg.mode = RunMode::kUpperBoundNoExec;
    cfg.clients = clients;
    apply_bench_mode(cfg);
    auto r = run_experiment(cfg);
    print_row("No-Execution", std::to_string(clients / 1000) + "K clients", r);
  }
  for (std::uint64_t clients : {10'000ull, 20'000ull, 40'000ull, 80'000ull}) {
    FabricConfig cfg;
    cfg.mode = RunMode::kUpperBoundExec;
    cfg.clients = clients;
    apply_bench_mode(cfg);
    auto r = run_experiment(cfg);
    print_row("Execution", std::to_string(clients / 1000) + "K clients", r);
  }
  return 0;
}
