// Extension study (beyond the paper's figures): ResilientDB as a BFT
// test-bed. The paper positions the fabric as "a reliable test-bed to
// implement and evaluate newer BFT consensus protocols" — this bench does
// exactly that with the three engines in this repo:
//
//   PBFT     3 phases, 2 quadratic — robust, the paper's workhorse
//   Zyzzyva  1 linear phase        — fastest fault-free, collapses on crash
//   PoE      2 phases, 1 quadratic — speculative but quorum-based (§2.1):
//            keeps Zyzzyva-class speed WITHOUT the failure collapse
//
// Series 1: fault-free throughput/latency vs replica count.
// Series 2: one crashed backup at n = 16.
#include <string>

#include "api/experiment_io.h"

using namespace rdb::simfab;

namespace {

const char* name_of(Protocol p) {
  switch (p) {
    case Protocol::kPbft:
      return "PBFT";
    case Protocol::kZyzzyva:
      return "Zyzzyva";
    case Protocol::kPoe:
      return "PoE";
  }
  return "?";
}

}  // namespace

int main() {
  print_figure_header(
      "Extension: three BFT protocols on one fabric (fault-free)");
  for (Protocol proto :
       {Protocol::kPbft, Protocol::kZyzzyva, Protocol::kPoe}) {
    for (std::uint32_t n : {4u, 16u, 32u}) {
      FabricConfig cfg;
      cfg.protocol = proto;
      cfg.replicas = n;
      apply_bench_mode(cfg);
      auto r = run_experiment(cfg);
      print_row(name_of(proto), std::to_string(n) + " replicas", r);
    }
  }

  print_figure_header(
      "Extension: one crashed backup (16 replicas) — robustness of "
      "speculation");
  for (Protocol proto :
       {Protocol::kPbft, Protocol::kZyzzyva, Protocol::kPoe}) {
    FabricConfig cfg;
    cfg.protocol = proto;
    cfg.replicas = 16;
    cfg.failed_replicas = {1};
    if (proto == Protocol::kZyzzyva) {
      cfg.warmup_ns = 16'000'000'000;
      cfg.measure_ns = 24'000'000'000;
    }
    apply_bench_mode(cfg);
    auto r = run_experiment(cfg);
    print_row(name_of(proto), "1 failure", r);
  }
  return 0;
}
