// bench_crypto — old-vs-new Ed25519 hot-path comparison, emitted as JSON.
//
//   bench_crypto [--out BENCH_crypto.json] [--iters N]
//
// Times the seed's reference implementations (binary double-and-add,
// shift-subtract reduction, no key caching) against the current hot path
// (windowed fixed-base table, interleaved double-scalar verification,
// expanded-key cache) and writes the measured latencies plus speedup
// ratios. The numbers regenerate the calibration notes in simfab/costs.h
// and docs/crypto.md.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "crypto/ed25519.h"

namespace {

using Clock = std::chrono::steady_clock;

double time_ns(int iters, const std::function<void()>& fn) {
  // One warm-up pass (builds lazy tables, faults pages).
  fn();
  auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) fn();
  auto t1 = Clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                 .count()) /
         iters;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_crypto.json";
  int iters = 200;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--iters") && i + 1 < argc) {
      iters = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_crypto [--out FILE] [--iters N]\n");
      return 2;
    }
  }

  using namespace rdb;
  crypto::Ed25519Seed seed{};
  seed.fill(0x42);
  auto pub = crypto::ed25519_public_key(seed);
  auto expanded = crypto::ed25519_expand_key(pub);
  Bytes msg(128, 0x5A);
  auto sig = crypto::ed25519_sign(BytesView(msg), seed, pub);

  double sign_ref = time_ns(iters, [&] {
    auto s = crypto::detail::sign_ref(BytesView(msg), seed, pub);
    (void)s;
  });
  double sign_fast = time_ns(iters, [&] {
    auto s = crypto::ed25519_sign(BytesView(msg), seed, pub);
    (void)s;
  });
  double verify_ref = time_ns(iters, [&] {
    volatile bool ok = crypto::detail::verify_ref(BytesView(msg), sig, pub);
    (void)ok;
  });
  double verify_fast = time_ns(iters, [&] {
    volatile bool ok = crypto::ed25519_verify(BytesView(msg), sig, pub);
    (void)ok;
  });
  double verify_expanded = time_ns(iters, [&] {
    volatile bool ok =
        crypto::ed25519_verify_expanded(BytesView(msg), sig, *expanded);
    (void)ok;
  });
  double expand_key = time_ns(iters, [&] {
    auto k = crypto::ed25519_expand_key(pub);
    (void)k;
  });

  // Batch throughput sweep: N signatures from 8 signers (quorum-like mix),
  // timed three ways — the seed's reference verification, the serial
  // expanded-key hot path (one double-scalar multiplication each), and the
  // true batch path (ONE randomized multi-scalar multiplication per wave).
  constexpr int kSigners = 8;
  constexpr int kMaxSigs = 256;
  std::vector<crypto::Ed25519Seed> seeds(kSigners);
  std::vector<crypto::Ed25519PublicKey> pubs(kSigners);
  std::vector<crypto::Ed25519ExpandedKeyPtr> keys(kSigners);
  for (int i = 0; i < kSigners; ++i) {
    seeds[i].fill(static_cast<std::uint8_t>(0x21 + i));
    pubs[i] = crypto::ed25519_public_key(seeds[i]);
    keys[i] = crypto::ed25519_expand_key(pubs[i]);
  }
  std::vector<Bytes> msgs(kMaxSigs);
  std::vector<crypto::Ed25519Signature> sigs(kMaxSigs);
  for (int i = 0; i < kMaxSigs; ++i) {
    msgs[i].assign(128, static_cast<std::uint8_t>(i));
    sigs[i] = crypto::ed25519_sign(BytesView(msgs[i]), seeds[i % kSigners],
                                   pubs[i % kSigners]);
  }

  struct BatchPoint {
    int n;
    double ref_ns, serial_ns, batch_ns;
  };
  std::vector<BatchPoint> points;
  for (int n : {16, 64, 256}) {
    // Scale iteration counts so each point costs roughly the same wall time.
    int batch_iters = iters * 16 / n + 1;
    BatchPoint p{};
    p.n = n;
    p.ref_ns = time_ns(batch_iters, [&] {
      bool all = true;
      for (int i = 0; i < n; ++i)
        all &= crypto::detail::verify_ref(BytesView(msgs[i]), sigs[i],
                                          pubs[i % kSigners]);
      volatile bool sink = all;
      (void)sink;
    });
    p.serial_ns = time_ns(batch_iters, [&] {
      bool all = true;
      for (int i = 0; i < n; ++i)
        all &= crypto::ed25519_verify_expanded(BytesView(msgs[i]), sigs[i],
                                               *keys[i % kSigners]);
      volatile bool sink = all;
      (void)sink;
    });
    std::vector<crypto::Ed25519BatchItem> items(n);
    for (int i = 0; i < n; ++i)
      items[i] = {BytesView(msgs[i]), sigs[i].data(), keys[i % kSigners].get()};
    std::unique_ptr<bool[]> verdicts(new bool[static_cast<std::size_t>(n)]);
    p.batch_ns = time_ns(batch_iters, [&] {
      volatile std::size_t valid = crypto::ed25519_verify_batch(
          items.data(), static_cast<std::size_t>(n), verdicts.get());
      (void)valid;
    });
    points.push_back(p);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::perror("fopen");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"message_bytes\": 128,\n");
  std::fprintf(f, "  \"iters\": %d,\n", iters);
  std::fprintf(f, "  \"sign_ref_ns\": %.0f,\n", sign_ref);
  std::fprintf(f, "  \"sign_fast_ns\": %.0f,\n", sign_fast);
  std::fprintf(f, "  \"sign_speedup\": %.2f,\n", sign_ref / sign_fast);
  std::fprintf(f, "  \"verify_ref_ns\": %.0f,\n", verify_ref);
  std::fprintf(f, "  \"verify_fast_ns\": %.0f,\n", verify_fast);
  std::fprintf(f, "  \"verify_speedup\": %.2f,\n", verify_ref / verify_fast);
  std::fprintf(f, "  \"verify_expanded_ns\": %.0f,\n", verify_expanded);
  std::fprintf(f, "  \"expand_key_ns\": %.0f,\n", expand_key);
  // batchN_fast_ns is the TRUE batch path (one MSM per wave); the serial
  // expanded-key loop — the previous meaning of "fast" — is kept alongside
  // as batchN_serial_ns so the ratio history stays interpretable.
  for (std::size_t i = 0; i < points.size(); ++i) {
    const BatchPoint& p = points[i];
    const char* sep = ",";
    std::fprintf(f, "  \"batch%d_ref_ns\": %.0f,\n", p.n, p.ref_ns);
    std::fprintf(f, "  \"batch%d_serial_ns\": %.0f,\n", p.n, p.serial_ns);
    std::fprintf(f, "  \"batch%d_fast_ns\": %.0f,\n", p.n, p.batch_ns);
    std::fprintf(f, "  \"batch%d_speedup\": %.2f,\n", p.n,
                 p.ref_ns / p.batch_ns);
    std::fprintf(f, "  \"batch%d_serial_speedup\": %.2f,\n", p.n,
                 p.serial_ns / p.batch_ns);
    if (i + 1 == points.size()) sep = "";
    std::fprintf(f, "  \"batch%d_fast_sigs_per_sec\": %.0f%s\n", p.n,
                 p.n * 1e9 / p.batch_ns, sep);
  }
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf("sign:   ref %.0f ns -> fast %.0f ns (%.1fx)\n", sign_ref,
              sign_fast, sign_ref / sign_fast);
  std::printf("verify: ref %.0f ns -> fast %.0f ns (%.1fx), expanded %.0f ns\n",
              verify_ref, verify_fast, verify_ref / verify_fast,
              verify_expanded);
  for (const BatchPoint& p : points)
    std::printf(
        "batch%-3d: ref %.0f ns, serial %.0f ns -> batch %.0f ns "
        "(%.1fx vs ref, %.1fx vs serial, %.0f sigs/s)\n",
        p.n, p.ref_ns, p.serial_ns, p.batch_ns, p.ref_ns / p.batch_ns,
        p.serial_ns / p.batch_ns, p.n * 1e9 / p.batch_ns);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
