// Figure 15: client population sweep (4K..80K), 16 replicas.
//
// Paper: throughput grows until ~32K clients then flattens (all threads at
// capacity); latency grows linearly with the client count — going from 16K
// to 80K clients buys ~1.44% throughput for ~5x latency.
#include <string>

#include "api/experiment_io.h"

using namespace rdb::simfab;

int main() {
  print_figure_header("Figure 15: number of clients (16 replicas)");

  for (std::uint64_t clients :
       {4'000ull, 8'000ull, 16'000ull, 32'000ull, 48'000ull, 64'000ull,
        80'000ull}) {
    FabricConfig cfg;
    cfg.replicas = 16;
    cfg.clients = clients;
    apply_bench_mode(cfg);
    auto r = run_experiment(cfg);
    print_row("PBFT", std::to_string(clients / 1000) + "K clients", r);
  }
  return 0;
}
