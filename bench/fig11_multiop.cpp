// Figure 11: operations per transaction (1..50) under 2..5 batch threads,
// 16 replicas. Throughput is reported both in transactions/s (falls as
// transactions grow) and operations/s (rises — fewer consensus rounds
// execute more work).
//
// Paper: multi-operation transactions cost up to 93% in txn/s on the
// 2-batch-thread setup; going from 2 to 5 batch threads recovers up to 66%.
#include <string>

#include "api/experiment_io.h"

using namespace rdb::simfab;

int main() {
  print_figure_header(
      "Figure 11: operations per transaction x batch threads (16 replicas)");

  for (std::uint32_t bt : {2u, 3u, 4u, 5u}) {
    for (std::uint32_t ops : {1u, 5u, 10u, 30u, 50u}) {
      FabricConfig cfg;
      cfg.replicas = 16;
      cfg.batch_threads = bt;
      cfg.ops_per_txn = ops;
      apply_bench_mode(cfg);
      auto r = run_experiment(cfg);
      print_row("B=" + std::to_string(bt), "ops=" + std::to_string(ops), r);
    }
  }
  return 0;
}
