// Figure 14: in-memory storage vs off-memory embedded database (the paper
// used SQLite; this repo's stand-in is PageDB — see DESIGN.md §2), 16
// replicas. The execute thread blocks on the store call either way.
//
// Paper: SQLite costs ~94% throughput (~18x) and ~24x latency.
//
// The bench first measures the REAL per-operation cost of both backends on
// this machine (MemStore vs PageDB with a cold-ish cache) as calibration
// evidence for the simulator's cost constants, then runs the experiment.
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "api/experiment_io.h"
#include "storage/mem_store.h"
#include "storage/page_db.h"
#include "workload/ycsb.h"

using namespace rdb;
using namespace rdb::simfab;

namespace {

double measure_store_ns(storage::KvStore& store, int ops) {
  workload::YcsbConfig wcfg;
  wcfg.record_count = 10'000;
  workload::YcsbWorkload wl(wcfg);
  Rng rng(1);
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < ops; ++i) {
    store.put(workload::YcsbWorkload::key_name(rng.below(10'000)), "valuevalu");
  }
  auto elapsed = std::chrono::steady_clock::now() - start;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                 .count()) /
         ops;
}

}  // namespace

int main() {
  // --- calibration evidence on the host ---
  {
    storage::MemStore mem;
    double mem_ns = measure_store_ns(mem, 50'000);

    namespace fs = std::filesystem;
    auto path = fs::temp_directory_path() / "rdb_fig14_calib.db";
    fs::remove(path);
    fs::remove(fs::path(path.string() + ".wal"));
    storage::PageDbConfig pcfg;
    pcfg.path = path.string();
    pcfg.cache_pages = 32;  // small cache: most writes touch the file/WAL
    pcfg.sync_wal = false;
    {
      storage::PageDb db(pcfg);
      double db_ns = measure_store_ns(db, 20'000);
      std::printf(
          "calibration (host): mem write %.0f ns/op, pagedb write %.0f ns/op "
          "(%.0fx)\n",
          mem_ns, db_ns, db_ns / mem_ns);
    }
    fs::remove(path);
    fs::remove(fs::path(path.string() + ".wal"));
  }

  print_figure_header(
      "Figure 14: in-memory vs off-memory storage (16 replicas)");

  {
    FabricConfig cfg;
    cfg.replicas = 16;
    cfg.storage = StorageModel::kMemory;
    apply_bench_mode(cfg);
    print_row("in-memory", "16 replicas", run_experiment(cfg));
  }
  {
    FabricConfig cfg;
    cfg.replicas = 16;
    cfg.storage = StorageModel::kPageDb;
    cfg.warmup_ns = 3'000'000'000;   // low-throughput regime
    cfg.measure_ns = 4'000'000'000;
    apply_bench_mode(cfg);
    print_row("off-memory (PageDB/SQLite)", "16 replicas",
              run_experiment(cfg));
  }
  return 0;
}
