// Figure 17: backup replica failures (0, 1, 5 of 16 replicas; f = 5 is the
// maximum), PBFT vs Zyzzyva.
//
// Paper: PBFT barely dips — no phase needs more than 2f+1 messages. Zyzzyva
// collapses with a single failure: its client needs responses from ALL
// 3f+1 replicas, so every request burns the client timeout before taking
// the commit-certificate slow path (~39x throughput loss).
#include <string>

#include "api/experiment_io.h"

using namespace rdb::simfab;

int main() {
  print_figure_header("Figure 17: backup failures, PBFT vs Zyzzyva (16 replicas)");

  for (Protocol proto : {Protocol::kPbft, Protocol::kZyzzyva}) {
    const char* pname = proto == Protocol::kPbft ? "PBFT" : "ZYZ";
    for (std::uint32_t failures : {0u, 1u, 5u}) {
      FabricConfig cfg;
      cfg.replicas = 16;
      cfg.protocol = proto;
      for (std::uint32_t i = 0; i < failures; ++i)
        cfg.failed_replicas.push_back(static_cast<rdb::ReplicaId>(i + 1));
      if (proto == Protocol::kZyzzyva && failures > 0) {
        // The collapsed regime is paced by the 10s client timeout: the
        // horizon must span several timeout generations.
        cfg.warmup_ns = 16'000'000'000;
        cfg.measure_ns = 24'000'000'000;
      }
      apply_bench_mode(cfg);
      auto r = run_experiment(cfg);
      print_row(pname, "failures=" + std::to_string(failures), r);
    }
  }
  return 0;
}
