// Figure 13: signature-scheme sweep, 16 replicas — (i) no signatures,
// (ii) ED25519 everywhere, (iii) RSA everywhere, (iv) the paper's standard
// combination: clients sign with ED25519, replicas authenticate with
// CMAC-AES.
//
// Paper: cryptography costs at least 49% throughput; RSA over CMAC+ED25519
// raises latency ~125x; clever scheme choice recovers most of the loss.
#include "api/experiment_io.h"

using namespace rdb::simfab;

int main() {
  print_figure_header("Figure 13: cryptographic signature schemes (16 replicas)");

  struct Point {
    const char* label;
    rdb::crypto::SchemeConfig schemes;
  };
  const Point kPoints[] = {
      {"no-signatures", rdb::crypto::SchemeConfig::none()},
      {"all-ED25519", rdb::crypto::SchemeConfig::all_ed25519()},
      {"all-RSA", rdb::crypto::SchemeConfig::all_rsa()},
      {"CMAC+ED25519 (standard)", rdb::crypto::SchemeConfig::standard()},
  };

  for (const auto& p : kPoints) {
    FabricConfig cfg;
    cfg.replicas = 16;
    cfg.schemes = p.schemes;
    if (p.schemes.replica_scheme == rdb::crypto::SignatureScheme::kRsa2048) {
      // RSA collapses throughput; longer horizon for a steady estimate.
      cfg.warmup_ns = 3'000'000'000;
      cfg.measure_ns = 4'000'000'000;
    }
    apply_bench_mode(cfg);
    auto r = run_experiment(cfg);
    print_row(p.label, "16 replicas", r);
  }
  return 0;
}
