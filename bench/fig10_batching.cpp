// Figure 10: throughput and latency vs transactions per batch (1..5000),
// 16 replicas, standard pipeline.
//
// Paper: batching yields up to 66x throughput; the optimum sits near 100-
// 1000 transactions per batch, with a decline beyond ~3000 as batch-creation
// time and message size start to dominate.
#include <string>

#include "api/experiment_io.h"

using namespace rdb::simfab;

int main() {
  print_figure_header(
      "Figure 10: transactions per batch sweep (16 replicas)");

  for (std::uint32_t batch : {1u, 10u, 50u, 100u, 500u, 1000u, 3000u, 5000u}) {
    FabricConfig cfg;
    cfg.replicas = 16;
    cfg.batch_size = batch;
    if (batch <= 10) {
      // Deeply overloaded regime: longer horizon to reach steady state.
      cfg.warmup_ns = 4'000'000'000;
      cfg.measure_ns = 4'000'000'000;
    }
    apply_bench_mode(cfg);
    auto r = run_experiment(cfg);
    print_row("PBFT", "batch=" + std::to_string(batch), r);
  }
  return 0;
}
