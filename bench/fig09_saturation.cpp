// Figure 9: per-thread saturation at the primary (9a) and a backup (9b) for
// each pipeline shape, PBFT and Zyzzyva, 16 replicas. 100% = the thread is
// completely busy over the measurement window.
//
// Paper: PBFT-0B0E saturates the lone worker; adding the execute thread and
// then batch threads progressively rebalances until no stage saturates —
// the reasoning that led to ResilientDB's standard 2B1E pipeline.
#include <string>

#include "api/experiment_io.h"

using namespace rdb::simfab;

int main() {
  print_figure_header(
      "Figure 9: thread saturation per pipeline shape (16 replicas)");

  struct Shape {
    const char* name;
    std::uint32_t b, e;
  };
  constexpr Shape kShapes[] = {
      {"0B 0E", 0, 0}, {"0B 1E", 0, 1}, {"1B 1E", 1, 1}, {"2B 1E", 2, 1}};

  for (Protocol proto : {Protocol::kPbft, Protocol::kZyzzyva}) {
    const char* pname = proto == Protocol::kPbft ? "PBFT" : "ZYZ";
    for (const auto& shape : kShapes) {
      FabricConfig cfg;
      cfg.protocol = proto;
      cfg.replicas = 16;
      cfg.batch_threads = shape.b;
      cfg.execute_threads = shape.e;
      apply_bench_mode(cfg);
      auto r = run_experiment(cfg);
      std::string label = std::string(pname) + " " + shape.name;
      print_row(label, "16 replicas", r);
      print_saturation(label, r);
    }
  }
  return 0;
}
