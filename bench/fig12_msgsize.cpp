// Figure 12: Pre-prepare message size sweep (8KB..64KB) via per-transaction
// payload padding, 16 replicas, batch of 100.
//
// Paper: from 8KB to 64KB messages, throughput drops ~52% and latency rises
// ~1.09x — the network becomes the bound and the threads go idle.
#include <cstdio>
#include <string>

#include "api/experiment_io.h"

using namespace rdb::simfab;

int main() {
  print_figure_header(
      "Figure 12: Pre-prepare message size sweep (16 replicas, batch 100)");

  // Batch of 100 txns; padding chosen so the Pre-prepare lands on the
  // target size (base txn ~40B + padding per txn).
  struct Point {
    const char* label;
    std::uint32_t padding;
  };
  constexpr Point kPoints[] = {
      {"8KB", 40}, {"16KB", 120}, {"32KB", 280}, {"64KB", 600}};

  for (const auto& p : kPoints) {
    FabricConfig cfg;
    cfg.replicas = 16;
    cfg.payload_padding = p.padding;
    apply_bench_mode(cfg);
    auto r = run_experiment(cfg);
    print_row("PBFT", p.label, r);
    std::printf("  primary egress utilization: %.0f%%\n",
                100.0 * r.primary_egress_utilization);
  }
  return 0;
}
