// Figure 1: the headline result. A well-crafted system running three-phase
// PBFT (ResilientDB's 2-batch-thread / 1-execute-thread pipeline) against
// the single-phase Zyzzyva protocol on a protocol-centric design (all work
// on one worker thread), 4..32 replicas, 80K clients.
//
// Paper: ResilientDB reaches ~175K txn/s, scales to 32 replicas, and beats
// the protocol-centric system by up to 79%.
#include <string>

#include "api/experiment_io.h"

using namespace rdb::simfab;

int main() {
  print_figure_header(
      "Figure 1: ResilientDB(PBFT) vs protocol-centric Zyzzyva, 80K clients");

  for (std::uint32_t n : {4u, 8u, 16u, 32u}) {
    FabricConfig cfg;
    cfg.replicas = n;
    apply_bench_mode(cfg);
    auto r = run_experiment(cfg);
    print_row("ResilientDB-PBFT", std::to_string(n) + " replicas", r);
  }

  for (std::uint32_t n : {4u, 8u, 16u, 32u}) {
    FabricConfig cfg;
    cfg.replicas = n;
    cfg.protocol = Protocol::kZyzzyva;
    cfg.batch_threads = 0;   // protocol-centric: no pipeline,
    cfg.execute_threads = 0; // everything on the single worker thread
    apply_bench_mode(cfg);
    auto r = run_experiment(cfg);
    print_row("Zyzzyva-protocol-centric", std::to_string(n) + " replicas", r);
  }
  return 0;
}
