// Micro-benchmarks (google-benchmark) for the primitives underneath the
// fabric: hashing, MACs, signatures, queues, pools, stores, workload
// generation, and message serialization. These are the numbers that justify
// the simulator's cost model (simfab/costs.h) on the host machine.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>

#include "common/rng.h"
#include "crypto/cmac.h"
#include "crypto/ed25519.h"
#include "crypto/hmac.h"
#include "crypto/provider.h"
#include "crypto/sha256.h"
#include "protocol/messages.h"
#include "protocol/validate.h"
#include "queues/buffer_pool.h"
#include "queues/frame.h"
#include "queues/mpmc_queue.h"
#include "storage/mem_store.h"
#include "storage/page_db.h"
#include "workload/ycsb.h"

namespace {

using namespace rdb;

void BM_Sha256(benchmark::State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    auto d = crypto::sha256(BytesView(data));
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(4096)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  Bytes key(32, 0x11);
  Bytes data(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    auto d = crypto::hmac_sha256(BytesView(key), BytesView(data));
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024);

void BM_CmacAes128(benchmark::State& state) {
  crypto::AesKey key{};
  key.fill(0x2B);
  crypto::CmacContext ctx(key);
  Bytes data(static_cast<std::size_t>(state.range(0)), 0xCD);
  for (auto _ : state) {
    auto tag = ctx.tag(BytesView(data));
    benchmark::DoNotOptimize(tag);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CmacAes128)->Arg(48)->Arg(1024)->Arg(4096);

void BM_Ed25519Sign(benchmark::State& state) {
  crypto::Ed25519Seed seed{};
  seed.fill(0x42);
  auto pub = crypto::ed25519_public_key(seed);
  Bytes msg(128, 0x5A);
  for (auto _ : state) {
    auto sig = crypto::ed25519_sign(BytesView(msg), seed, pub);
    benchmark::DoNotOptimize(sig);
  }
}
BENCHMARK(BM_Ed25519Sign);

void BM_Ed25519Verify(benchmark::State& state) {
  crypto::Ed25519Seed seed{};
  seed.fill(0x42);
  auto pub = crypto::ed25519_public_key(seed);
  Bytes msg(128, 0x5A);
  auto sig = crypto::ed25519_sign(BytesView(msg), seed, pub);
  for (auto _ : state) {
    bool ok = crypto::ed25519_verify(BytesView(msg), sig, pub);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_Ed25519Verify);

// --- Old-vs-new crypto paths (the retained reference implementations) ------

void BM_Ed25519SignRef(benchmark::State& state) {
  crypto::Ed25519Seed seed{};
  seed.fill(0x42);
  auto pub = crypto::ed25519_public_key(seed);
  Bytes msg(128, 0x5A);
  for (auto _ : state) {
    auto sig = crypto::detail::sign_ref(BytesView(msg), seed, pub);
    benchmark::DoNotOptimize(sig);
  }
}
BENCHMARK(BM_Ed25519SignRef);

void BM_Ed25519VerifyRef(benchmark::State& state) {
  crypto::Ed25519Seed seed{};
  seed.fill(0x42);
  auto pub = crypto::ed25519_public_key(seed);
  Bytes msg(128, 0x5A);
  auto sig = crypto::ed25519_sign(BytesView(msg), seed, pub);
  for (auto _ : state) {
    bool ok = crypto::detail::verify_ref(BytesView(msg), sig, pub);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_Ed25519VerifyRef);

void BM_Ed25519VerifyExpanded(benchmark::State& state) {
  // The hot-path variant used by CryptoProvider: the per-key table is built
  // once (registry cache), verification only runs the double-scalar mult.
  crypto::Ed25519Seed seed{};
  seed.fill(0x42);
  auto pub = crypto::ed25519_public_key(seed);
  auto expanded = crypto::ed25519_expand_key(pub);
  Bytes msg(128, 0x5A);
  auto sig = crypto::ed25519_sign(BytesView(msg), seed, pub);
  for (auto _ : state) {
    bool ok = crypto::ed25519_verify_expanded(BytesView(msg), sig, *expanded);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_Ed25519VerifyExpanded);

void BM_Ed25519ExpandKey(benchmark::State& state) {
  // Per-peer one-time cost: decompression (inversion + sqrt) + validation
  // + the odd-multiples table build.
  crypto::Ed25519Seed seed{};
  seed.fill(0x42);
  auto pub = crypto::ed25519_public_key(seed);
  for (auto _ : state) {
    auto expanded = crypto::ed25519_expand_key(pub);
    benchmark::DoNotOptimize(expanded);
  }
}
BENCHMARK(BM_Ed25519ExpandKey);

void BM_Ed25519BatchVerify64(benchmark::State& state) {
  // Throughput view: 64 signatures from 8 distinct signers (cache-friendly
  // mix resembling quorum traffic). Reported as signatures/second.
  constexpr int kSigners = 8;
  constexpr int kSigs = 64;
  std::vector<crypto::Ed25519Seed> seeds(kSigners);
  std::vector<crypto::Ed25519PublicKey> pubs(kSigners);
  std::vector<crypto::Ed25519ExpandedKeyPtr> keys(kSigners);
  for (int i = 0; i < kSigners; ++i) {
    seeds[i].fill(static_cast<std::uint8_t>(0x21 + i));
    pubs[i] = crypto::ed25519_public_key(seeds[i]);
    keys[i] = crypto::ed25519_expand_key(pubs[i]);
  }
  std::vector<Bytes> msgs(kSigs);
  std::vector<crypto::Ed25519Signature> sigs(kSigs);
  for (int i = 0; i < kSigs; ++i) {
    msgs[i].assign(128, static_cast<std::uint8_t>(i));
    sigs[i] = crypto::ed25519_sign(BytesView(msgs[i]), seeds[i % kSigners],
                                   pubs[i % kSigners]);
  }
  for (auto _ : state) {
    bool all = true;
    for (int i = 0; i < kSigs; ++i)
      all &= crypto::ed25519_verify_expanded(BytesView(msgs[i]), sigs[i],
                                             *keys[i % kSigners]);
    benchmark::DoNotOptimize(all);
  }
  state.SetItemsProcessed(state.iterations() * kSigs);
}
BENCHMARK(BM_Ed25519BatchVerify64);

void BM_Ed25519BatchVerifyMsm(benchmark::State& state) {
  // The true batch kernel: one randomized multi-scalar multiplication per
  // wave of N signatures (vs BM_Ed25519BatchVerify64's serial loop over
  // per-item double-scalar mults). Throughput in signatures/second; the
  // wave size sweep shows how the per-item cost amortizes.
  const int n = static_cast<int>(state.range(0));
  constexpr int kSigners = 8;
  std::vector<crypto::Ed25519Seed> seeds(kSigners);
  std::vector<crypto::Ed25519PublicKey> pubs(kSigners);
  std::vector<crypto::Ed25519ExpandedKeyPtr> keys(kSigners);
  for (int i = 0; i < kSigners; ++i) {
    seeds[i].fill(static_cast<std::uint8_t>(0x21 + i));
    pubs[i] = crypto::ed25519_public_key(seeds[i]);
    keys[i] = crypto::ed25519_expand_key(pubs[i]);
  }
  std::vector<Bytes> msgs(static_cast<std::size_t>(n));
  std::vector<crypto::Ed25519Signature> sigs(static_cast<std::size_t>(n));
  std::vector<crypto::Ed25519BatchItem> items(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    msgs[i].assign(128, static_cast<std::uint8_t>(i));
    sigs[i] = crypto::ed25519_sign(BytesView(msgs[i]), seeds[i % kSigners],
                                   pubs[i % kSigners]);
    items[i] = {BytesView(msgs[i]), sigs[i].data(), keys[i % kSigners].get()};
  }
  std::unique_ptr<bool[]> verdicts(new bool[static_cast<std::size_t>(n)]);
  for (auto _ : state) {
    std::size_t valid = crypto::ed25519_verify_batch(
        items.data(), static_cast<std::size_t>(n), verdicts.get());
    benchmark::DoNotOptimize(valid);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Ed25519BatchVerifyMsm)->Arg(16)->Arg(64)->Arg(256);

void BM_ProviderSignVerify(benchmark::State& state) {
  crypto::KeyRegistry reg(1);
  crypto::CryptoProvider alice(Endpoint::replica(0), reg,
                               crypto::SchemeConfig::standard());
  crypto::CryptoProvider bob(Endpoint::replica(1), reg,
                             crypto::SchemeConfig::standard());
  Bytes msg(128, 0x5A);
  for (auto _ : state) {
    Bytes sig = alice.sign(Endpoint::replica(1), BytesView(msg));
    bool ok = bob.verify(Endpoint::replica(0), BytesView(msg), BytesView(sig));
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_ProviderSignVerify);

void BM_MpmcPushPop(benchmark::State& state) {
  MpmcQueue<std::uint64_t> q(1024);
  std::uint64_t v = 0;
  for (auto _ : state) {
    q.try_push(v);
    q.try_pop(v);
  }
}
BENCHMARK(BM_MpmcPushPop);

void BM_BufferPoolCycle(benchmark::State& state) {
  struct Obj {
    std::array<std::uint8_t, 256> data{};
  };
  BufferPool<Obj> pool(64);
  for (auto _ : state) {
    auto h = pool.acquire();
    benchmark::DoNotOptimize(h.ptr);
    pool.release(h);
  }
}
BENCHMARK(BM_BufferPoolCycle);

void BM_MemStoreWrite(benchmark::State& state) {
  storage::MemStore store;
  Rng rng(1);
  for (auto _ : state) {
    store.put(workload::YcsbWorkload::key_name(rng.below(100'000)),
              "valuevalu");
  }
}
BENCHMARK(BM_MemStoreWrite);

void BM_PageDbWrite(benchmark::State& state) {
  namespace fs = std::filesystem;
  auto path = fs::temp_directory_path() / "rdb_bench_pagedb.db";
  fs::remove(path);
  fs::remove(fs::path(path.string() + ".wal"));
  storage::PageDbConfig cfg;
  cfg.path = path.string();
  cfg.cache_pages = 32;
  storage::PageDb db(cfg);
  Rng rng(1);
  for (auto _ : state) {
    db.put(workload::YcsbWorkload::key_name(rng.below(100'000)), "valuevalu");
  }
  state.counters["cache_miss_rate"] =
      static_cast<double>(db.page_stats().cache_misses) /
      static_cast<double>(db.page_stats().cache_hits +
                          db.page_stats().cache_misses + 1);
}
BENCHMARK(BM_PageDbWrite);

void BM_ZipfianNext(benchmark::State& state) {
  workload::ZipfianGenerator zipf(600'000, 0.9);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.next(rng));
  }
}
BENCHMARK(BM_ZipfianNext);

void BM_MessageSerializeParse(benchmark::State& state) {
  protocol::PrePrepare pp;
  pp.view = 1;
  pp.seq = 42;
  pp.batch_digest = crypto::sha256("batch");
  for (int i = 0; i < 100; ++i) {
    protocol::Transaction t;
    t.client = static_cast<ClientId>(i);
    t.req_id = i;
    t.payload = Bytes(20, 0x33);
    pp.txns.push_back(std::move(t));
  }
  protocol::Message m;
  m.from = Endpoint::replica(0);
  m.payload = pp;
  m.signature = Bytes(17, 0x44);
  protocol::ValidationContext vctx;
  vctx.n = 4;
  vctx.current_view = 1;
  for (auto _ : state) {
    Bytes wire = m.serialize();
    // parse + semantic validation — the full per-frame receive cost under
    // the wire-taint discipline (Message::parse alone is gated to the
    // validation module by check_static.sh).
    auto verdict = protocol::validate_wire(BytesView(wire), vctx);
    benchmark::DoNotOptimize(verdict);
  }
}
BENCHMARK(BM_MessageSerializeParse);

protocol::Message broadcast_exemplar() {
  protocol::PrePrepare pp;
  pp.view = 1;
  pp.seq = 42;
  pp.batch_digest = crypto::sha256("batch");
  for (int i = 0; i < 100; ++i) {
    protocol::Transaction t;
    t.client = static_cast<ClientId>(i);
    t.req_id = i;
    t.payload = Bytes(20, 0x33);
    pp.txns.push_back(std::move(t));
  }
  protocol::Message m;
  m.from = Endpoint::replica(0);
  m.payload = pp;
  m.signature = Bytes(17, 0x44);
  return m;
}

void BM_BroadcastSerializePerPeer(benchmark::State& state) {
  // The legacy broadcast shape (and still the CMAC one, where pairwise MACs
  // make frames addressee-dependent): one serialization PER PEER.
  protocol::Message m = broadcast_exemplar();
  const auto peers = static_cast<std::size_t>(state.range(0));
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    for (std::size_t p = 0; p < peers; ++p) {
      Bytes wire = m.serialize();
      bytes += wire.size();
      benchmark::DoNotOptimize(wire.data());
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_BroadcastSerializePerPeer)->Arg(3)->Arg(15)->Arg(63);

void BM_BroadcastSerializeOnce(benchmark::State& state) {
  // The serialize-once shape (digital-signature links, §4.2 redundant-work
  // lesson): ONE serialization adopted into an OwnedFrame, n-1 FrameView
  // borrows over the same buffer. The per-peer cost collapses to a borrow
  // count bump.
  protocol::Message m = broadcast_exemplar();
  const auto peers = static_cast<std::size_t>(state.range(0));
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    OwnedFrame frame = OwnedFrame::adopt(m.serialize());
    for (std::size_t p = 0; p < peers; ++p) {
      FrameView view = frame.view();
      bytes += view.size();
      benchmark::DoNotOptimize(view.data());
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_BroadcastSerializeOnce)->Arg(3)->Arg(15)->Arg(63);

void BM_BatchDigest(benchmark::State& state) {
  // One hash over the whole batch string (§4.3) vs hashing per transaction —
  // the practice the paper calls out.
  std::vector<protocol::Transaction> txns;
  for (int i = 0; i < 100; ++i) {
    protocol::Transaction t;
    t.payload = Bytes(40, 0x55);
    txns.push_back(std::move(t));
  }
  bool per_txn = state.range(0) == 1;
  for (auto _ : state) {
    if (per_txn) {
      for (const auto& t : txns) {
        auto d = crypto::sha256(BytesView(t.payload));
        benchmark::DoNotOptimize(d);
      }
    } else {
      Writer w;
      for (const auto& t : txns) t.serialize(w);
      auto d = crypto::sha256(BytesView(w.data()));
      benchmark::DoNotOptimize(d);
    }
  }
}
BENCHMARK(BM_BatchDigest)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
