// Figure 8: throughput and latency vs replica count for PBFT and Zyzzyva as
// the pipeline deepens — 0B0E (monolithic worker), 0B1E (+execute thread),
// 1B1E (+one batch thread), 2B1E (ResilientDB's standard pipeline).
//
// Paper: PBFT gains 1.39x from 0B0E to 2B1E; the only Zyzzyva configuration
// that outperforms PBFT-2B1E is Zyzzyva-2B1E.
#include <string>

#include "api/experiment_io.h"

using namespace rdb::simfab;

namespace {

struct PipelineShape {
  const char* name;
  std::uint32_t batch_threads;
  std::uint32_t execute_threads;
};

constexpr PipelineShape kShapes[] = {
    {"0B0E", 0, 0}, {"0B1E", 0, 1}, {"1B1E", 1, 1}, {"2B1E", 2, 1}};

}  // namespace

int main() {
  print_figure_header(
      "Figure 8: pipeline depth x replica count, PBFT and Zyzzyva");

  for (Protocol proto : {Protocol::kPbft, Protocol::kZyzzyva}) {
    const char* pname = proto == Protocol::kPbft ? "PBFT" : "ZYZ";
    for (const auto& shape : kShapes) {
      for (std::uint32_t n : {4u, 8u, 16u, 32u}) {
        FabricConfig cfg;
        cfg.protocol = proto;
        cfg.replicas = n;
        cfg.batch_threads = shape.batch_threads;
        cfg.execute_threads = shape.execute_threads;
        cfg.warmup_ns = 600'000'000;
        cfg.measure_ns = 1'200'000'000;
        apply_bench_mode(cfg);
        auto r = run_experiment(cfg);
        print_row(std::string(pname) + " " + shape.name,
                  std::to_string(n) + " replicas", r);
      }
    }
  }
  return 0;
}
