#!/usr/bin/env bash
# Static-analysis gate for the repo (see docs/static_analysis.md).
#
#   scripts/check_static.sh
#
# Ten stages, strongest-available-tool first:
#
#   1. sync-primitive grep gate   — no naked std:: synchronization outside
#                                   src/common/sync.h. Pure grep: enforced
#                                   EVERYWHERE, even without clang.
#   2. input-taint grep gate      — the Untrusted<T> discipline (docs/
#                                   static_analysis.md, "Input taint
#                                   discipline"): Message::parse confined to
#                                   the validation module, the unsafe_*
#                                   escape hatches confined to validate.cpp
#                                   (and tests), reinterpret_cast confined to
#                                   a reviewed per-file whitelist.
#   3. Action-dispatch gate       — protocol::Action dispatch goes through
#                                   visit_action (protocol/actions.h): an
#                                   exhaustive std::visit with catch-alls
#                                   rejected at compile time, so adding an
#                                   Action cannot silently fall through a
#                                   dispatcher. Raw get_if-on-Action is
#                                   banned outside the defining header, and
#                                   src/mc/ bans `default:` labels outright.
#                                   cmake/CheckActionVisit.cmake proves the
#                                   compile-time rejections stay live.
#   4. determinism grep gate      — src/protocol/, src/ledger/, and the
#                                   det-zone files of src/mc/ ARE (or replay)
#                                   the replicated state machine: no
#                                   unordered containers, no clocks, no rand
#                                   there at all (docs/static_analysis.md §7).
#   5. determinism call-graph lint— scripts/check_determinism.py walks the
#                                   call graph from RDB_DETERMINISTIC roots
#                                   and rejects the banned catalog (clocks,
#                                   RNG, env/locale, unordered iteration).
#                                   Needs python3 only; libclang sharpens it
#                                   when available.
#   6. hot-path call-graph lint   — scripts/check_hotpath.py walks the call
#                                   graph from RDB_HOT_PATH roots and rejects
#                                   heap allocation, naked blocking, and
#                                   per-send copy amplification (docs/
#                                   static_analysis.md §8); plus a grep ban
#                                   on naked new/malloc in src/protocol.
#   7. strict warning build       — -Wall -Wextra -Wshadow -Wextra-semi
#                                   -Wnon-virtual-dtor with -Werror, into a
#                                   throwaway build dir (build-static).
#   8. Thread Safety Analysis     — clang only. The same build dir compiles
#                                   with -Wthread-safety -Werror=thread-safety
#                                   (CMakeLists.txt turns it on when the
#                                   compiler is clang), and the CMake
#                                   try_compile probes prove the gate has
#                                   teeth (cmake/CheckThreadSafety.cmake).
#   9. clang static analyzer      — clang only. `clang++ --analyze` over
#                                   every src/ + tools/ translation unit
#                                   using the flags recorded in
#                                   compile_commands.json; any analyzer
#                                   diagnostic fails the gate.
#  10. clang-tidy                 — clang-tidy only. Runs the .clang-tidy
#                                   check set over src/ + tools/ against the
#                                   compile_commands.json exported in step 7.
#
# Stages 8-10 skip with a notice when clang / clang-tidy are not installed
# (the default container ships only GCC); the grep gates, the call-graph
# lints, and the strict build still run, so the script is useful on every
# machine and authoritative in the CI static-analysis job where clang is
# present. With --grep-only, stages 1-6 run and the script exits — the
# cheap, compiler-independent gates for a fast CI step or a pre-commit hook.
set -euo pipefail

cd "$(dirname "$0")/.."

grep_only=0
[ "${1:-}" = "--grep-only" ] && grep_only=1

status=0

# --- 1. sync-primitive grep gate -------------------------------------------
# src/common/sync.h is the ONLY file allowed to name the std primitives it
# wraps. Everything else must use rdb::Mutex / rdb::CondVar / MutexLock /
# ReaderLock / WriterLock so the TSA annotations and the lock-rank detector
# see every acquisition.
echo "=== [1/10] sync-primitive grep gate ==="
pattern='std::(mutex|shared_mutex|recursive_mutex|timed_mutex|condition_variable|condition_variable_any|lock_guard|unique_lock|shared_lock|scoped_lock)\b'
if offenders=$(grep -RnE "$pattern" src tools \
                 --include='*.h' --include='*.cpp' \
               | grep -v '^src/common/sync\.h:'); then
  echo "FAIL: naked std synchronization primitives outside src/common/sync.h:"
  echo "$offenders"
  echo "Use rdb::Mutex / rdb::CondVar / MutexLock (src/common/sync.h) instead."
  status=1
else
  echo "OK: no naked std sync primitives outside src/common/sync.h"
fi

# --- 2. input-taint grep gate -----------------------------------------------
# Wire bytes are attacker-controlled. Message::parse returns
# Untrusted<Message>, and ONLY protocol/validate.cpp may open the wrapper
# (mint Validated<Message> after the full check catalog). Tests sit inside
# the boundary (they construct adversarial inputs on purpose); everything
# else — src/, tools/, bench/ — must go through protocol::validate_wire.
echo "=== [2/10] input-taint grep gate ==="
taint_status=0

# 2a. Message::parse is callable only from the validation module itself
# (plus its own declaration/definition in messages.{h,cpp}).
if offenders=$(grep -RnE 'Message::parse\s*\(' src tools bench \
                 --include='*.h' --include='*.cpp' \
               | grep -vE '^src/protocol/(validate\.cpp|messages\.h|messages\.cpp):'); then
  echo "FAIL: Message::parse called outside the validation module:"
  echo "$offenders"
  echo "Go through protocol::validate_wire (src/protocol/validate.h) instead."
  taint_status=1
else
  echo "OK: Message::parse confined to src/protocol/validate.cpp"
fi

# 2b. The unsafe escape hatches are confined to the wrapper definition and
# the one sanctioned opening point.
if offenders=$(grep -RnE '\bunsafe_(get|release)\s*\(' src tools bench \
                 --include='*.h' --include='*.cpp' \
               | grep -vE '^src/(protocol/validate\.cpp|common/untrusted\.h):'); then
  echo "FAIL: Untrusted<T> escape hatch used outside src/protocol/validate.cpp:"
  echo "$offenders"
  echo "Validate first; only validate.cpp may call unsafe_get/unsafe_release."
  taint_status=1
else
  echo "OK: unsafe_get/unsafe_release confined to the validation module"
fi

# 2c. reinterpret_cast erases the type system entirely — the strongest way
# to smuggle unvalidated bytes into typed state. Reviewed per-file
# whitelist only (serde primitives, hash block readers, socket/file IO):
reinterpret_whitelist='^(src/common/serde\.h|src/crypto/sha256\.h|src/crypto/sha512\.h|src/runtime/tcp_transport\.cpp|src/storage/page_db\.cpp|src/workload/ycsb\.cpp|tools/rdb_wirefuzz\.cpp):'
if offenders=$(grep -RnE '\breinterpret_cast\b' src tools bench \
                 --include='*.h' --include='*.cpp' \
               | grep -vE "$reinterpret_whitelist"); then
  echo "FAIL: reinterpret_cast outside the reviewed whitelist:"
  echo "$offenders"
  echo "Add a justification + the file to the whitelist in this script AND"
  echo "docs/static_analysis.md, or use the serde.h primitives."
  taint_status=1
else
  echo "OK: reinterpret_cast confined to the reviewed whitelist"
fi

if [ "$taint_status" -ne 0 ]; then
  status=1
else
  echo "OK: input-taint discipline holds"
fi

# --- 3. Action-dispatch exhaustiveness gate ---------------------------------
# protocol::Action dispatch must go through visit_action (protocol/actions.h):
# std::visit over an exhaustive overload set with generic catch-alls rejected
# at compile time, so adding an Action alternative (e.g. for the multi-primary
# refactor) breaks every dispatcher loudly instead of falling through. Raw
# get_if-on-Action is how silent if/else fall-through chains get written, so
# it is banned outside the header that defines the idiom; action_as<T> is the
# sanctioned single-alternative peek. src/mc/ additionally bans `default:`
# labels outright — every switch there (the MsgType fan-out included) must
# enumerate its cases, so a new message type cannot be silently ignored by
# the model checker.
echo "=== [3/10] Action-dispatch exhaustiveness gate ==="
action_status=0
if offenders=$(grep -RnE 'get_if<\s*(rdb::)?(protocol::)?[A-Za-z_]*Action\s*>' \
                 src tools bench --include='*.h' --include='*.cpp' \
               | grep -v '^src/protocol/actions\.h:'); then
  echo "FAIL: raw get_if-on-Action outside protocol/actions.h:"
  echo "$offenders"
  echo "Dispatch with protocol::visit_action (exhaustive, no default:);"
  echo "peek a single alternative with protocol::action_as<T>."
  action_status=1
else
  echo "OK: Action dispatch confined to visit_action / action_as"
fi
if [ -d src/mc ]; then
  if offenders=$(grep -RnE '^\s*default\s*:' src/mc \
                   --include='*.h' --include='*.cpp'); then
    echo "FAIL: default: labels inside src/mc (switches must be exhaustive):"
    echo "$offenders"
    action_status=1
  else
    echo "OK: no default: labels in src/mc"
  fi
fi
if [ "$action_status" -ne 0 ]; then
  status=1
else
  echo "OK: Action-dispatch exhaustiveness holds"
fi

# --- 4. determinism grep gate ------------------------------------------------
# src/protocol/ and src/ledger/ hold the replicated state machine: every
# replica must compute bit-identical results from the same ordered input.
# The model checker's det-zone files (world model, oracles, trace replay —
# everything a violation trace's byte-identical replay depends on) are held
# to the same standard; only the exploration layer (src/mc/explorer.*, the
# visited set and random walks) may use unordered containers and the seeded
# Rng, because exploration ORDER is free while TRANSITIONS are not.
# The blunt bans (no unordered containers, no clocks, no rand — at all, not
# just "not reachable from a root") are enforced here by grep so they hold
# even without python3/clang; the call-graph lint in stage 5 covers the rest
# of the det-zone with allowlisted barriers.
echo "=== [4/10] determinism grep gate (src/protocol, src/ledger, src/mc det files) ==="
det_pattern='std::unordered_|steady_clock|system_clock|high_resolution_clock|\brand\s*\(|\bsrand\s*\(|random_device|\bgetenv\b|\bsetlocale\b'
mc_det_files=()
for f in src/mc/engine_model.h src/mc/model.h src/mc/model.cpp \
         src/mc/oracles.h src/mc/oracles.cpp src/mc/trace.h src/mc/trace.cpp \
         src/mc/replay.h src/mc/replay.cpp; do
  [ -f "$f" ] && mc_det_files+=("$f")
done
if offenders=$(grep -RnE "$det_pattern" src/protocol src/ledger \
                 ${mc_det_files[@]+"${mc_det_files[@]}"} \
                 --include='*.h' --include='*.cpp' \
               | grep -vE '^\s*[^:]+:[0-9]+:\s*(//|\*)'); then
  echo "FAIL: nondeterminism sources inside the replicated state machine:"
  echo "$offenders"
  echo "src/protocol/, src/ledger/, and the src/mc det files may not touch"
  echo "unordered containers, clocks, RNG, env, or locale. Move the"
  echo "nondeterminism to the fabric (src/runtime/) or the exploration layer"
  echo "(src/mc/explorer.*), or behind an allowlisted RDB_DET_BARRIER."
  status=1
else
  echo "OK: protocol/ledger/mc-det free of unordered containers, clocks, RNG"
fi

# --- 5. determinism call-graph lint ------------------------------------------
# Walks transitively from every RDB_DETERMINISTIC root (engine handlers,
# ledger append, serde, snapshot capture, KvStore apply path) and rejects
# the banned catalog. scripts/determinism_allowlist.txt is the single
# documented escape hatch. tools/detlint wraps the same script for CMake/CI.
echo "=== [5/10] determinism call-graph lint ==="
if command -v python3 >/dev/null 2>&1; then
  if python3 scripts/check_determinism.py --repo .; then
    echo "OK: det-zone call graph clean"
  else
    echo "FAIL: determinism lint reported findings (see above)"
    status=1
  fi
else
  echo "SKIP: python3 not installed; tools/detlint falls back to a token scan"
fi

# --- 6. hot-path call-graph lint ---------------------------------------------
# Walks transitively from every RDB_HOT_PATH root (engine handlers,
# Message::serialize/signing_bytes, the pipeline stage loops, transport
# sends) and rejects heap allocation, naked blocking, and per-send copy
# amplification. scripts/hotpath_allowlist.txt is the single documented
# escape hatch (every entry doubles as an RDB_HOT_BARRIER with an in-file
# proof comment). A blunt grep backs it up where the call graph cannot
# reach: src/protocol/ is the ordering path itself, so naked new/malloc is
# banned there outright (comment mentions are stripped before matching).
echo "=== [6/10] hot-path call-graph lint ==="
hot_status=0
hot_alloc_pattern='\bnew\s+[A-Za-z_][A-Za-z0-9_:<>, ]*[\[({]|\b(malloc|calloc|realloc)\s*\('
if offenders=$(grep -RnE "$hot_alloc_pattern" src/protocol \
                 --include='*.h' --include='*.cpp' \
               | sed -E 's%//.*$%%' | grep -E "$hot_alloc_pattern"); then
  echo "FAIL: naked heap allocation inside src/protocol (the ordering path):"
  echo "$offenders"
  echo "Preallocate, pool (queues/buffer_pool.h, queues/frame.h), or move"
  echo "the allocation out of the consensus critical path."
  hot_status=1
else
  echo "OK: src/protocol free of naked new/malloc"
fi
if command -v python3 >/dev/null 2>&1; then
  if python3 scripts/check_hotpath.py --repo .; then
    echo "OK: hot-path call graph clean"
  else
    echo "FAIL: hot-path lint reported findings (see above)"
    hot_status=1
  fi
else
  echo "SKIP: python3 not installed; only the grep ban above was enforced"
fi
if [ "$hot_status" -ne 0 ]; then
  status=1
else
  echo "OK: hot-path resource discipline holds"
fi

if [ "$grep_only" -eq 1 ]; then
  if [ "$status" -ne 0 ]; then
    echo "check_static.sh: grep gates FAILED"
    exit "$status"
  fi
  echo "check_static.sh: grep gates passed (--grep-only)"
  exit 0
fi

# --- 6. strict warning build -----------------------------------------------
echo "=== [7/10] strict warning build (-Werror) -> build-static ==="
cmake -B build-static -S . -DCMAKE_CXX_FLAGS=-Werror >/dev/null
cmake --build build-static -j"$(nproc)"
echo "OK: zero-warning build"

# --- 7. Thread Safety Analysis (clang) -------------------------------------
echo "=== [8/10] Clang Thread Safety Analysis ==="
if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-tsa -S . \
        -DCMAKE_CXX_COMPILER=clang++ -DCMAKE_C_COMPILER=clang >/dev/null
  cmake --build build-tsa -j"$(nproc)"
  echo "OK: TSA build clean (probes verified by cmake/CheckThreadSafety.cmake)"
else
  echo "SKIP: clang++ not installed; TSA runs in the CI static-analysis job"
fi

# --- 8. clang static analyzer ----------------------------------------------
echo "=== [9/10] clang static analyzer (--analyze) ==="
if command -v clang++ >/dev/null 2>&1 && command -v python3 >/dev/null 2>&1; then
  # Re-drive every TU through the path-sensitive analyzer using the include
  # dirs/defines recorded in compile_commands.json (exported in step 3).
  # Any analyzer warning is a failure.
  if python3 scripts/run_clang_analyze.py build-static/compile_commands.json; then
    echo "OK: clang static analyzer clean"
  else
    echo "FAIL: clang static analyzer reported issues"
    status=1
  fi
else
  echo "SKIP: clang++/python3 not installed; runs in the CI static-analysis job"
fi

# --- 9. clang-tidy ----------------------------------------------------------
echo "=== [10/10] clang-tidy ==="
if command -v clang-tidy >/dev/null 2>&1; then
  # compile_commands.json is exported by CMakeLists.txt
  # (CMAKE_EXPORT_COMPILE_COMMANDS ON) into build-static in step 3.
  mapfile -t tidy_sources < <(find src tools -name '*.cpp' | sort)
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p build-static -quiet "${tidy_sources[@]}"
  else
    clang-tidy -p build-static --quiet "${tidy_sources[@]}"
  fi
  echo "OK: clang-tidy clean"
else
  echo "SKIP: clang-tidy not installed; runs in the CI static-analysis job"
fi

if [ "$status" -ne 0 ]; then
  echo "check_static.sh: FAILED"
  exit "$status"
fi
echo "check_static.sh: all available gates passed"
