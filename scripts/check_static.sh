#!/usr/bin/env bash
# Static-analysis gate for the repo (see docs/static_analysis.md).
#
#   scripts/check_static.sh
#
# Four stages, strongest-available-tool first:
#
#   1. sync-primitive grep gate   — no naked std:: synchronization outside
#                                   src/common/sync.h. Pure grep: enforced
#                                   EVERYWHERE, even without clang.
#   2. strict warning build       — -Wall -Wextra -Wshadow -Wextra-semi
#                                   -Wnon-virtual-dtor with -Werror, into a
#                                   throwaway build dir (build-static).
#   3. Thread Safety Analysis     — clang only. The same build dir compiles
#                                   with -Wthread-safety -Werror=thread-safety
#                                   (CMakeLists.txt turns it on when the
#                                   compiler is clang), and the CMake
#                                   try_compile probes prove the gate has
#                                   teeth (cmake/CheckThreadSafety.cmake).
#   4. clang-tidy                 — clang-tidy only. Runs the .clang-tidy
#                                   check set over src/ + tools/ against the
#                                   compile_commands.json exported in step 2.
#
# Stages 3-4 skip with a notice when clang / clang-tidy are not installed
# (the default container ships only GCC); the grep gate and strict build
# still run, so the script is useful on every machine and authoritative in
# the CI static-analysis job where clang is present.
set -euo pipefail

cd "$(dirname "$0")/.."

status=0

# --- 1. sync-primitive grep gate -------------------------------------------
# src/common/sync.h is the ONLY file allowed to name the std primitives it
# wraps. Everything else must use rdb::Mutex / rdb::CondVar / MutexLock /
# ReaderLock / WriterLock so the TSA annotations and the lock-rank detector
# see every acquisition.
echo "=== [1/4] sync-primitive grep gate ==="
pattern='std::(mutex|shared_mutex|recursive_mutex|timed_mutex|condition_variable|condition_variable_any|lock_guard|unique_lock|shared_lock|scoped_lock)\b'
if offenders=$(grep -RnE "$pattern" src tools \
                 --include='*.h' --include='*.cpp' \
               | grep -v '^src/common/sync\.h:'); then
  echo "FAIL: naked std synchronization primitives outside src/common/sync.h:"
  echo "$offenders"
  echo "Use rdb::Mutex / rdb::CondVar / MutexLock (src/common/sync.h) instead."
  status=1
else
  echo "OK: no naked std sync primitives outside src/common/sync.h"
fi

# --- 2. strict warning build -----------------------------------------------
echo "=== [2/4] strict warning build (-Werror) -> build-static ==="
cmake -B build-static -S . -DCMAKE_CXX_FLAGS=-Werror >/dev/null
cmake --build build-static -j"$(nproc)"
echo "OK: zero-warning build"

# --- 3. Thread Safety Analysis (clang) -------------------------------------
echo "=== [3/4] Clang Thread Safety Analysis ==="
if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-tsa -S . \
        -DCMAKE_CXX_COMPILER=clang++ -DCMAKE_C_COMPILER=clang >/dev/null
  cmake --build build-tsa -j"$(nproc)"
  echo "OK: TSA build clean (probes verified by cmake/CheckThreadSafety.cmake)"
else
  echo "SKIP: clang++ not installed; TSA runs in the CI static-analysis job"
fi

# --- 4. clang-tidy ----------------------------------------------------------
echo "=== [4/4] clang-tidy ==="
if command -v clang-tidy >/dev/null 2>&1; then
  # compile_commands.json is exported by CMakeLists.txt
  # (CMAKE_EXPORT_COMPILE_COMMANDS ON) into build-static in step 2.
  mapfile -t tidy_sources < <(find src tools -name '*.cpp' | sort)
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p build-static -quiet "${tidy_sources[@]}"
  else
    clang-tidy -p build-static --quiet "${tidy_sources[@]}"
  fi
  echo "OK: clang-tidy clean"
else
  echo "SKIP: clang-tidy not installed; runs in the CI static-analysis job"
fi

if [ "$status" -ne 0 ]; then
  echo "check_static.sh: FAILED"
  exit "$status"
fi
echo "check_static.sh: all available gates passed"
