#!/usr/bin/env python3
"""Drive `clang++ --analyze` over the project's translation units.

Stage 5 of scripts/check_static.sh. Reads a compile_commands.json, keeps the
src/ and tools/ TUs (third-party and test code are out of scope for the
analyzer gate), re-runs each through the clang static analyzer with the same
include directories / defines / language standard the real build used, and
fails (exit 1) if the analyzer emits any diagnostic.

Usage: run_clang_analyze.py <path/to/compile_commands.json> [jobs]
"""

import concurrent.futures
import json
import os
import shlex
import subprocess
import sys

# Flags worth forwarding to the analyzer: include paths, defines, standard.
_KEEP_PREFIXES = ("-I", "-D", "-std=", "-isystem", "-iquote")


def _analyzer_args(entry):
    """Extracts forwardable flags from one compile_commands entry."""
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        argv = shlex.split(entry["command"])
    keep = []
    it = iter(range(len(argv)))
    i = 1  # skip the compiler itself
    while i < len(argv):
        a = argv[i]
        if a in ("-I", "-isystem", "-iquote") and i + 1 < len(argv):
            keep += [a, argv[i + 1]]
            i += 2
            continue
        if a.startswith(_KEEP_PREFIXES):
            keep.append(a)
        i += 1
    return keep


def _in_scope(path, root):
    rel = os.path.relpath(path, root)
    return rel.startswith(("src" + os.sep, "tools" + os.sep))


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    db_path = sys.argv[1]
    jobs = int(sys.argv[2]) if len(sys.argv) > 2 else (os.cpu_count() or 4)
    with open(db_path) as f:
        entries = json.load(f)

    root = os.path.dirname(os.path.abspath(os.path.join(db_path, os.pardir)))
    # compile_commands.json lives in the build dir; the source root is its
    # parent only when the build dir is directly under it — resolve per entry
    # from the recorded file paths instead.
    tus = []
    for e in entries:
        src = e["file"]
        if not os.path.isabs(src):
            src = os.path.join(e.get("directory", "."), src)
        src = os.path.normpath(src)
        repo_root = os.getcwd()
        if not _in_scope(src, repo_root):
            continue
        tus.append((src, _analyzer_args(e)))

    if not tus:
        print("run_clang_analyze: no src/ or tools/ TUs found in", db_path)
        return 2

    def analyze(tu):
        src, args = tu
        cmd = (
            ["clang++", "--analyze", "--analyzer-output", "text"]
            + args
            + [
                # Core + security + deadcode checkers; unix.Malloc etc. are in
                # the default set already.
                "-Xclang", "-analyzer-checker=core,deadcode,security,unix,cplusplus",
                "-o", os.devnull,
                src,
            ]
        )
        proc = subprocess.run(cmd, capture_output=True, text=True)
        noisy = proc.stdout + proc.stderr
        return src, proc.returncode, noisy.strip()

    failures = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as ex:
        for src, rc, output in ex.map(analyze, tus):
            if rc != 0 or "warning:" in output or "error:" in output:
                failures.append((src, output))

    print(f"run_clang_analyze: {len(tus)} TUs analyzed, "
          f"{len(failures)} with findings")
    for src, output in failures:
        print(f"--- {src} ---")
        print(output or "(non-zero exit, no output)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
