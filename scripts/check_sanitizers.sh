#!/usr/bin/env bash
# Builds and runs the crypto + queue (+ verify-pool runtime) tests under
# ASan, UBSan, and TSan via the -DRDB_SANITIZE CMake option.
#
#   scripts/check_sanitizers.sh [address|undefined|thread ...]
#
# With no arguments all three sanitizers run. Each configuration builds into
# its own directory (build-asan / build-ubsan / build-tsan) so the regular
# ./build tree is left untouched.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZERS=("$@")
if [ ${#SANITIZERS[@]} -eq 0 ]; then
  SANITIZERS=(address undefined thread)
fi

# crypto_test / ed25519_test cover the new hot-path arithmetic; queues_test
# covers the lock-free handoff; the runtime verify-pool tests exercise the
# parallel verification stage; chaos_test runs the recovery drills (primary
# crash, partition+heal, dup/reorder storms) and tcp_transport_test the
# self-healing reconnect path — the richest TSan targets in the repo.
# storage_test + recovery_test cover the durable path: WAL group commit,
# fault-injected crash points, and hard-kill replica rejoin.
UNIT_TESTS=(crypto_test ed25519_test batch_verify_test queues_test
            chaos_test tcp_transport_test storage_test recovery_test)
RUNTIME_FILTER='Runtime.VerifyPool*'

status=0
for san in "${SANITIZERS[@]}"; do
  case "$san" in
    address)   dir=build-asan ;;
    undefined) dir=build-ubsan ;;
    thread)    dir=build-tsan ;;
    *) echo "unknown sanitizer: $san (want address|undefined|thread)" >&2
       exit 2 ;;
  esac

  echo "=== [$san] configure + build -> $dir ==="
  cmake -B "$dir" -S . -DRDB_SANITIZE="$san" >/dev/null
  cmake --build "$dir" --target "${UNIT_TESTS[@]}" runtime_test -j"$(nproc)"

  for t in "${UNIT_TESTS[@]}"; do
    echo "=== [$san] $t ==="
    if ! "$dir/tests/$t"; then
      echo "FAIL: $t under $san" >&2
      status=1
    fi
  done

  echo "=== [$san] runtime_test ($RUNTIME_FILTER) ==="
  if ! "$dir/tests/runtime_test" --gtest_filter="$RUNTIME_FILTER"; then
    echo "FAIL: runtime_test under $san" >&2
    status=1
  fi

  echo "=== [$san] rdb_chaos --drill crash-restart ==="
  cmake --build "$dir" --target rdb_chaos -j"$(nproc)"
  if ! "$dir/tools/rdb_chaos" --drill crash-restart --seed 42; then
    echo "FAIL: crash-restart drill under $san" >&2
    status=1
  fi

  # Determinism drill: a dup/reorder storm while asserting byte-identical
  # execution fingerprints (exec_acc) across replicas and a silent
  # divergence tripwire — nondeterministic execution that only shows up
  # under sanitizer-altered timing is exactly what this catches.
  echo "=== [$san] rdb_chaos --drill dup-reorder (exec fingerprints) ==="
  if ! "$dir/tools/rdb_chaos" --drill dup-reorder --seed 42; then
    echo "FAIL: dup-reorder fingerprint drill under $san" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "all sanitizer runs passed"
else
  echo "sanitizer failures detected" >&2
fi
exit "$status"
