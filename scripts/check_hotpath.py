#!/usr/bin/env python3
"""Hot-path resource lint: walk the call graph from RDB_HOT_PATH roots and
reject transitive reachability of the banned hot-path catalog.

The consensus critical path (see src/common/rtzone.h) is the chain a client
request rides from arrival to reply: the replica pipeline loops, the engine
on_* handlers, message serde, signing, and the transport enqueue paths. The
paper's throughput model (§4) assumes this chain runs at memory speed; every
hidden heap round-trip, blocking syscall, or per-send copy shows up directly
as lost throughput. This gate proves the annotated RT-zone cannot reach:

  * heap allocation          (naked new, make_unique/make_shared, malloc,
                              calloc, realloc, strdup)
  * std::function capture    (type-erased callables allocate on construction)
  * naked blocking           (sleep_for/sleep_until/usleep/nanosleep,
                              unbounded condition-variable wait)
  * synchronous file I/O     (fopen/fsync/fwrite/fread/fstream/pread/pwrite)
  * copy amplification       (a loop body that re-serializes per iteration —
                              broadcast must serialize ONCE, then fan out
                              borrowed FrameViews)

Engine: the same pure-python textual engine the determinism lint falls back
to (comment stripping, brace-matched body extraction, name-keyed transitive
call graph). Allocation and blocking idioms are token-shaped, so the textual
walk is the primary engine here, not a fallback; CheckHotPath.cmake's
should-pass/should-fail fixtures prove it has teeth.

Allowlist: scripts/hotpath_allowlist.txt. One function name per line,
`name  reason...`. A listed function is a BARRIER: the walker neither
reports banned tokens inside it nor descends into its callees. A barrier
must bound the resource use it hides (a counted pool fallback, a backoff
with a hard cap, one fsync per group-commit wave) and say how — both in the
allowlist line and in a proof comment at the definition site, next to its
RDB_HOT_BARRIER annotation. An annotated barrier missing from the allowlist
(or vice versa — enforced via the annotation side) is itself a finding.

Usage:
  check_hotpath.py --repo .                     # whole-tree walk
  check_hotpath.py --fixture tests/static/hot_should_fail.cpp

Exit codes: 0 clean, 1 findings, 2 usage/setup error.
"""

import argparse
import os
import re
import sys

# --------------------------------------------------------------------------
# Banned catalog. Each entry: (key, regex over a preprocessed function body,
# human explanation). String literals are reduced to __STR__ before
# matching, so tokens inside log messages cannot false-positive.
# --------------------------------------------------------------------------
BANNED = [
    ("heap-alloc", re.compile(
        r"\bnew\b(?!\s*\()"          # naked new / new[] (placement new has
                                     # the form `new (addr)` and is exempt)
        r"|\bmake_unique\b|\bmake_shared\b"
        r"|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(|\bstrdup\b"),
     "heap allocation on the consensus hot path: every message pays a "
     "malloc round-trip — preallocate, pool, or hoist out of the loop"),
    ("std-function", re.compile(r"\bstd\s*::\s*function\s*<"),
     "std::function construction: type erasure heap-allocates for any "
     "capture larger than the small-buffer — take a template or a function "
     "pointer instead"),
    ("blocking-sleep", re.compile(
        r"\bsleep_for\b|\bsleep_until\b|\busleep\s*\(|\bnanosleep\b"
        r"|\bsleep\s*\("),
     "sleep on the consensus hot path: stalls the pipeline stage for every "
     "queued message behind it"),
    ("unbounded-wait", re.compile(r"\bwait\s*\("),
     "unbounded condition-variable wait: a hot stage may only block with a "
     "deadline (wait_for/wait_until re-check the stop token) or behind a "
     "justified backpressure barrier"),
    ("blocking-io", re.compile(
        r"\bfopen\s*\(|\bfsync\s*\(|\bfdatasync\s*\(|\bfwrite\s*\("
        r"|\bfread\s*\(|\bofstream\b|\bifstream\b|\bfstream\b"
        r"|\bpread\s*\(|\bpwrite\s*\("),
     "synchronous file I/O on the consensus hot path: disk latency is "
     "milliseconds, the message budget is microseconds — buffer and group-"
     "commit behind a barrier (see ReplicaLog)"),
    ("copy-amp", re.compile(
        r"\b(?:for|while)\s*\([^)]*\)\s*\{[^{}]*\.\s*serialize\s*\(", re.S),
     "per-send copy amplification: this loop re-serializes the same message "
     "every iteration — serialize ONCE into an OwnedFrame and fan out "
     "borrowed FrameViews (queues/frame.h)"),
]

ANNOT_ROOT = "RDB_HOT_PATH"
ANNOT_BARRIER = "RDB_HOT_BARRIER"

# C++ keywords that look like calls in `name (` position.
NOT_CALLS = frozenset(
    """if for while switch return sizeof alignof decltype static_cast
    dynamic_cast reinterpret_cast const_cast catch new delete throw assert
    defined static_assert noexcept alignas typeid co_await co_yield
    co_return define include pragma""".split())


def fail(msg):
    print("check_hotpath: " + msg, file=sys.stderr)
    sys.exit(2)


# --------------------------------------------------------------------------
# Source preprocessing (shared shape with check_determinism.py's textual
# engine; duplicated deliberately so each gate stays a standalone script
# with no import coupling between CI stages).
# --------------------------------------------------------------------------
def strip_source(text):
    """Removes comments; reduces string/char literals to __STR__. Preserves
    newlines so line numbers survive."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            seg = text[i:n if j < 0 else j + 2]
            out.append("\n" * seg.count("\n"))
            i = n if j < 0 else j + 2
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            lit = text[i:j + 1]
            out.append("__STR__")
            out.append("\n" * lit.count("\n"))
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


# A function definition: optional qualifiers, a (possibly Class::qualified)
# name, an argument list, trailing qualifiers, then `{`.
_DEF = re.compile(
    r"(?:^|[;}{]\s*|\n)\s*"                     # a definition starts a stmt
    r"(?:template\s*<[^;{}]*>\s*)?"             # template header
    r"[\w:&*<>,~\[\]\s]*?"                      # return type soup (greedyless)
    r"\b([A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)+|[A-Za-z_]\w*)"  # name
    r"\s*\(([^;{}()]*(?:\([^()]*\)[^;{}()]*)*)\)"  # args (1 nested paren lvl)
    r"\s*(?:const|noexcept|override|final|mutable|RDB_[A-Z_]+(?:\([^)]*\))?"
    r"|->\s*[\w:<>&*\s]+|\s)*"                  # trailing qualifiers
    r"\{", re.S)

# The function NAME an annotation macro applies to: the first call-shaped
# token after the macro (other stacked RDB_* macros skipped).
_ANNOT_NAME = re.compile(r"\b([A-Za-z_]\w*)\s*\(")

_CALL = re.compile(r"\b([A-Za-z_]\w*)\s*\(")


def extract_functions(path, text):
    """Yields (bare_name, qualified_name, body, line) for every function
    definition found in preprocessed `text`."""
    for m in _DEF.finditer(text):
        name = re.sub(r"\s+", "", m.group(1))
        bare = name.split("::")[-1].lstrip("~")
        if bare in NOT_CALLS or not bare:
            continue
        start = m.end() - 1
        depth = 0
        i = start
        n = len(text)
        while i < n:
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        body = text[start:i + 1]
        line = text.count("\n", 0, m.start(1)) + 1
        yield bare, name, body, line


def annotated_names(text, macro):
    """Bare names of functions declared/defined with `macro` in `text`."""
    names = set()
    for m in re.finditer(r"\b%s\b" % macro, text):
        # Skip the `#define RDB_HOT_*` lines in rtzone.h itself: the macro
        # token there annotates nothing.
        line_start = text.rfind("\n", 0, m.start()) + 1
        if text[line_start:m.start()].lstrip().startswith("#"):
            continue
        tail = text[m.end():m.end() + 400]
        tail = re.sub(r"\bRDB_[A-Z_]+\b", " ", tail)
        for c in _ANNOT_NAME.finditer(tail):
            if c.group(1) not in NOT_CALLS:
                names.add(c.group(1))
            break  # first call-shaped token after the macro is the name
    return names


# --------------------------------------------------------------------------
# Textual engine.
# --------------------------------------------------------------------------
class TextualEngine:
    def __init__(self, files, allow):
        self.allow = allow
        self.defs = {}      # bare name -> [(file, qualified, body, line)]
        self.roots = set()
        self.barriers = set()
        for path in files:
            try:
                raw = open(path, encoding="utf-8", errors="replace").read()
            except OSError as e:
                fail("cannot read %s: %s" % (path, e))
            text = strip_source(raw)
            self.roots |= annotated_names(text, ANNOT_ROOT)
            self.barriers |= annotated_names(text, ANNOT_BARRIER)
            for bare, qual, body, line in extract_functions(path, text):
                self.defs.setdefault(bare, []).append((path, qual, body, line))

    def run(self):
        findings = []
        # Barriers must be allowlisted: an un-allowlisted barrier is a lint
        # error, so nobody silences the walker without leaving a paper trail
        # (the allowlist line is where the boundedness argument lives).
        for b in sorted(self.barriers - self.allow):
            findings.append(
                ("<barrier>", b, "-", 0, "policy",
                 "RDB_HOT_BARRIER function %r is not in the allowlist "
                 "(scripts/hotpath_allowlist.txt)" % b))
        seen = set()
        queue = sorted(self.roots - self.allow)
        chain = {r: r for r in queue}
        while queue:
            name = queue.pop()
            if name in seen:
                continue
            seen.add(name)
            for path, qual, body, line in self.defs.get(name, ()):
                for key, rx, why in BANNED:
                    hit = rx.search(body)
                    if hit:
                        findings.append(
                            (chain[name], qual, path,
                             line + body.count("\n", 0, hit.start()),
                             key, why))
                for c in _CALL.finditer(body):
                    callee = c.group(1)
                    if (callee in NOT_CALLS or callee in self.allow
                            or callee in self.barriers or callee in seen
                            or callee not in self.defs):
                        continue
                    chain.setdefault(callee, chain[name] + " -> " + callee)
                    queue.append(callee)
        return findings, len(seen)


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------
def load_allowlist(path):
    allow = set()
    if not os.path.exists(path):
        return allow
    for ln in open(path, encoding="utf-8"):
        ln = ln.split("#", 1)[0].strip()
        if ln:
            allow.add(ln.split()[0])
    return allow


# The discrete-event simulator (src/sim, src/simfab) and the protocol model
# checker (src/mc) run OFFLINE — they replay the engines under a virtual
# clock and are never on a live replica's message path. They also reuse the
# runtime's vocabulary (SimReplica::perform, Network::send, SimThread fill/
# finish), which would poison the name-keyed call graph with phantom edges
# out of the real hot path. The RT-zone discipline therefore scopes to the
# trees a live replica executes.
EXCLUDE_DIRS = frozenset(("sim", "simfab", "mc"))


def gather_sources(repo):
    files = []
    root = os.path.join(repo, "src")
    for dirpath, dirs, names in os.walk(root):
        if dirpath == root:
            dirs[:] = [d for d in dirs if d not in EXCLUDE_DIRS]
        for n in sorted(names):
            if n.endswith((".h", ".cpp", ".cc", ".hpp")):
                files.append(os.path.join(dirpath, n))
    return files


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repo", default=None,
                    help="repository root (default: this script's parent)")
    ap.add_argument("--fixture", default=None,
                    help="lint one standalone file (CheckHotPath.cmake "
                         "should-pass/should-fail probes)")
    ap.add_argument("--allowlist", default=None)
    ap.add_argument("-q", "--quiet", action="store_true")
    args = ap.parse_args()

    repo = args.repo or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    allow_path = args.allowlist or os.path.join(
        repo, "scripts", "hotpath_allowlist.txt")
    allow = load_allowlist(allow_path)

    if args.fixture:
        engine = TextualEngine([args.fixture], allow)
    else:
        engine = TextualEngine(gather_sources(repo), allow)
    findings, walked = engine.run()

    if findings:
        print("hot-path lint: %d finding(s)" % len(findings))
        for root, qual, path, line, key, why in findings:
            print("  [%s] %s:%s\n    reached via: %s\n    function: %s\n"
                  "    %s" % (key, path, line, root, qual, why))
        print("\nFix the resource use, move the code off the hot path, or "
              "add a justified barrier to %s" % allow_path)
        return 1
    if not args.quiet:
        print("hot-path lint: clean (%d functions walked from the RT-zone "
              "roots, %d allowlist entries)" % (walked, len(allow)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
