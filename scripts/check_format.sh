#!/usr/bin/env bash
# clang-format conformance check (.clang-format at the repo root).
#
#   scripts/check_format.sh          # check only (CI mode); exit 1 on drift
#   scripts/check_format.sh --fix    # rewrite files in place
#
# Skips with a notice when clang-format is not installed (the default
# container ships only GCC); CI installs it and runs the check mode.
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "SKIP: clang-format not installed; runs in the CI static-analysis job"
  exit 0
fi

mapfile -t files < <(find src tools tests bench \
                       \( -name '*.h' -o -name '*.cpp' \) | sort)

if [ "${1:-}" = "--fix" ]; then
  clang-format -i "${files[@]}"
  echo "Formatted ${#files[@]} files"
  exit 0
fi

bad=0
for f in "${files[@]}"; do
  if ! clang-format --dry-run --Werror "$f" >/dev/null 2>&1; then
    echo "needs formatting: $f"
    bad=1
  fi
done
if [ "$bad" -ne 0 ]; then
  echo "check_format.sh: FAILED (run scripts/check_format.sh --fix)"
  exit 1
fi
echo "check_format.sh: ${#files[@]} files clean"
