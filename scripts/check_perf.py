#!/usr/bin/env python3
"""Perf-smoke gate over bench_crypto's JSON output.

    scripts/check_perf.py BENCH_crypto.json

Asserts the batch-verification speedup floor: the true batch path (one
randomized multi-scalar multiplication per 64-signature wave) must beat the
seed's reference verification by at least MIN_BATCH64_SPEEDUP. The floor is
deliberately below the typical measurement (~7x on a quiet machine, >= 5.0
recorded in the checked-in BENCH_crypto.json) so CI noise does not flake the
gate, while a regression that loses the MSM batching (e.g. falling back to
per-item verification) still fails loudly.

Exit status: 0 when every bound holds, 1 otherwise.
"""
import json
import sys

MIN_BATCH64_SPEEDUP = 4.0

# (field, minimum) — extend as new perf bars are added.
BOUNDS = [
    ("batch64_speedup", MIN_BATCH64_SPEEDUP),
]


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        bench = json.load(f)

    status = 0
    for field, minimum in BOUNDS:
        value = bench.get(field)
        if value is None:
            print(f"FAIL: {field} missing from {sys.argv[1]}")
            status = 1
            continue
        verdict = "ok" if value >= minimum else "FAIL"
        print(f"{verdict}: {field} = {value} (floor {minimum})")
        if value < minimum:
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
