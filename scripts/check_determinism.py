#!/usr/bin/env python3
"""Determinism lint: walk the call graph from RDB_DETERMINISTIC roots and
reject transitive reachability of the banned nondeterminism catalog.

Replicas are state machines (see src/common/det.h): every honest replica must
derive bit-identical state from the same ordered input. This gate proves the
annotated det-zone — engine handlers, serde, ledger append, snapshot capture,
the KvStore apply path, and the model checker's transition function, oracles,
and trace replay (src/mc/; exploration *order* in mc/explorer.cpp is free to
be nondeterministic, the transition semantics are not) — cannot reach:

  * wall/steady/hi-res clocks        (steady_clock, system_clock, time(), ...)
  * ambient RNG                      (rand, srand, std::random_device)
  * environment / locale             (getenv, setlocale, std::locale)
  * unordered-container iteration    (std::unordered_map/set range loops)
  * pointer-keyed ordering           (std::map<T*, ...>, std::set<T*>)
  * float formatting                 (%f/%g/%e, std::setprecision)

Two engines, mirroring run_clang_analyze.py's graceful-skip pattern:

  1. libclang AST engine — used when `import clang.cindex` succeeds AND a
     compile_commands.json is given. Resolves calls through the AST, so
     overloads and qualified names are exact.
  2. textual engine — pure-python fallback (comment stripping, brace-matched
     body extraction, name-keyed call graph). Always available; this is the
     engine CI runs when no clang toolchain is installed, and the one the
     CheckDeterminism.cmake fixtures prove has teeth.

Allowlist: scripts/determinism_allowlist.txt. One function name per line,
`name  reason...`. A listed function is a BARRIER: the walker neither reports
banned tokens inside it nor descends into its callees — it must neutralize
the nondeterminism it touches (sort, count, reduce) and say how, both in the
allowlist line and at the definition site.

Usage:
  check_determinism.py --repo .                         # whole-tree walk
  check_determinism.py --repo . --compile-commands build/compile_commands.json
  check_determinism.py --fixture tests/static/det_should_fail.cpp

Exit codes: 0 clean, 1 findings, 2 usage/setup error.
"""

import argparse
import os
import re
import sys

# --------------------------------------------------------------------------
# Banned catalog. Each entry: (key, regex over a preprocessed function body,
# human explanation). String literals are reduced to __STR__ (or
# __FLOATFMT__ when they contain a float format specifier) before matching,
# so tokens inside log messages cannot false-positive.
# --------------------------------------------------------------------------
BANNED = [
    ("clock", re.compile(
        r"steady_clock|system_clock|high_resolution_clock"
        r"|\bclock_gettime\b|\bgettimeofday\b|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "clock read: wall/steady time differs across replicas"),
    ("rng", re.compile(
        r"\brand\s*\(\s*\)|\bsrand\b|random_device|\bdrand48\b|\blrand48\b"),
     "ambient RNG: nondeterministically-seeded randomness"),
    ("env", re.compile(r"\bgetenv\b|\bsetlocale\b|std::locale\b"),
     "environment/locale: host-dependent configuration"),
    ("unordered", re.compile(r"\bunordered_map\b|\bunordered_set\b"),
     "unordered container in a det-zone body: iteration order depends on "
     "hash seeding and allocation history (keyed lookup belongs behind a "
     "barrier or outside the zone)"),
    ("ptr-key", re.compile(
        r"\b(?:map|set)\s*<\s*(?:const\s+)?[A-Za-z_][\w:]*\s*\*"),
     "pointer-keyed ordered container: address order varies run to run"),
    ("float-fmt", re.compile(r"__FLOATFMT__|\bsetprecision\b"),
     "float formatting: locale/libc-dependent digit strings"),
]

ANNOT_ROOT = "RDB_DETERMINISTIC"
ANNOT_BARRIER = "RDB_DET_BARRIER"

# C++ keywords that look like calls in `name (` position.
NOT_CALLS = frozenset(
    """if for while switch return sizeof alignof decltype static_cast
    dynamic_cast reinterpret_cast const_cast catch new delete throw assert
    defined static_assert noexcept alignas typeid co_await co_yield
    co_return define include pragma""".split())


def fail(msg):
    print("check_determinism: " + msg, file=sys.stderr)
    sys.exit(2)


# --------------------------------------------------------------------------
# Source preprocessing (textual engine).
# --------------------------------------------------------------------------
_FLOAT_FMT = re.compile(r"%[-+ #0-9.*]*[fFeEgG]")


def strip_source(text):
    """Removes comments; reduces string/char literals to __STR__ (or
    __FLOATFMT__ when they contain a printf float specifier). Preserves
    newlines so line numbers survive."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            seg = text[i:n if j < 0 else j + 2]
            out.append("\n" * seg.count("\n"))
            i = n if j < 0 else j + 2
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            lit = text[i:j + 1]
            out.append("__FLOATFMT__" if _FLOAT_FMT.search(lit) else "__STR__")
            out.append("\n" * lit.count("\n"))
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


# A function definition: optional qualifiers, a (possibly Class::qualified)
# name, an argument list, trailing qualifiers, then `{`.
_DEF = re.compile(
    r"(?:^|[;}{]\s*|\n)\s*"                     # a definition starts a stmt
    r"(?:template\s*<[^;{}]*>\s*)?"             # template header
    r"[\w:&*<>,~\[\]\s]*?"                      # return type soup (greedyless)
    r"\b([A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)+|[A-Za-z_]\w*)"  # name
    r"\s*\(([^;{}()]*(?:\([^()]*\)[^;{}()]*)*)\)"  # args (1 nested paren lvl)
    r"\s*(?:const|noexcept|override|final|mutable|RDB_[A-Z_]+(?:\([^)]*\))?"
    r"|->\s*[\w:<>&*\s]+|\s)*"                  # trailing qualifiers
    r"\{", re.S)

# The function NAME an annotation macro applies to: the last identifier
# before the next `(` after the macro token.
_ANNOT_NAME = re.compile(r"\b([A-Za-z_]\w*)\s*\(")

_CALL = re.compile(r"\b([A-Za-z_]\w*)\s*\(")

# Declarations of unordered containers anywhere in the tree: the declared
# NAME feeds range-iteration detection inside det-zone bodies (the body of
# `for (auto& kv : map_)` contains no "unordered" token when the member is
# declared in a header — member-aware matching closes that hole, which is
# exactly the MemStore::for_each stripe-iteration bug class).
_UNORDERED_DECL = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*>\s*"
    r"([A-Za-z_]\w*)\s*(?:RDB_[A-Z_]+(?:\([^)]*\))?\s*)?[;={]")

# Range-for target and .begin()/cbegin() receivers inside a body.
_RANGE_FOR = re.compile(r"for\s*\([^;()]*?:\s*([\w.\->\[\]()\s]+?)\s*\)")
_BEGIN_CALL = re.compile(r"([\w.\->\[\]]+)\s*\.\s*c?begin\s*\(")


def last_component(expr):
    expr = expr.strip().rstrip("()")
    for sep in ("->", "."):
        if sep in expr:
            expr = expr.rsplit(sep, 1)[1]
    return expr.strip("*& \t\n[]")


def extract_functions(path, text):
    """Yields (bare_name, qualified_name, body, line) for every function
    definition found in preprocessed `text`."""
    for m in _DEF.finditer(text):
        name = re.sub(r"\s+", "", m.group(1))
        bare = name.split("::")[-1].lstrip("~")
        if bare in NOT_CALLS or not bare:
            continue
        # Brace-match the body.
        start = m.end() - 1
        depth = 0
        i = start
        n = len(text)
        while i < n:
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        body = text[start:i + 1]
        line = text.count("\n", 0, m.start(1)) + 1
        yield bare, name, body, line


def annotated_names(text, macro):
    """Bare names of functions declared/defined with `macro` in `text`."""
    names = set()
    for m in re.finditer(r"\b%s\b" % macro, text):
        tail = text[m.end():m.end() + 400]
        # Skip other annotation macros stacked before the declaration.
        tail = re.sub(r"\bRDB_[A-Z_]+\b", " ", tail)
        last = None
        for c in _ANNOT_NAME.finditer(tail):
            last = c.group(1)
            break  # first call-shaped token after the macro is the name
        if last and last not in NOT_CALLS:
            names.add(last)
    return names


# --------------------------------------------------------------------------
# Textual engine.
# --------------------------------------------------------------------------
class TextualEngine:
    def __init__(self, files, allow):
        self.allow = allow
        self.defs = {}      # bare name -> [(file, qualified, body, line)]
        self.roots = set()
        self.barriers = set()
        self.unordered_names = set()
        for path in files:
            try:
                raw = open(path, encoding="utf-8", errors="replace").read()
            except OSError as e:
                fail("cannot read %s: %s" % (path, e))
            text = strip_source(raw)
            self.roots |= annotated_names(text, ANNOT_ROOT)
            self.barriers |= annotated_names(text, ANNOT_BARRIER)
            for m in _UNORDERED_DECL.finditer(text):
                self.unordered_names.add(m.group(1))
            for bare, qual, body, line in extract_functions(path, text):
                self.defs.setdefault(bare, []).append((path, qual, body, line))

    def unordered_iterations(self, body):
        """Yields (offset, expr) where `body` iterates a name declared as an
        unordered container somewhere in the tree."""
        for rx in (_RANGE_FOR, _BEGIN_CALL):
            for m in rx.finditer(body):
                if last_component(m.group(1)) in self.unordered_names:
                    yield m.start(), m.group(1).strip()

    def run(self):
        findings = []
        # Barriers must be allowlisted: an un-allowlisted barrier is a lint
        # error, so nobody silences the walker without leaving a paper trail.
        for b in sorted(self.barriers - self.allow):
            findings.append(
                ("<barrier>", b, "-", 0, "policy",
                 "RDB_DET_BARRIER function %r is not in the allowlist "
                 "(scripts/determinism_allowlist.txt)" % b))
        seen = set()
        queue = sorted(self.roots - self.allow)
        chain = {r: r for r in queue}
        while queue:
            name = queue.pop()
            if name in seen:
                continue
            seen.add(name)
            for path, qual, body, line in self.defs.get(name, ()):
                for key, rx, why in BANNED:
                    hit = rx.search(body)
                    if hit:
                        findings.append(
                            (chain[name], qual, path,
                             line + body.count("\n", 0, hit.start()),
                             key, why))
                for off, expr in self.unordered_iterations(body):
                    findings.append(
                        (chain[name], qual, path,
                         line + body.count("\n", 0, off), "unordered-iter",
                         "iterates %r, declared as an unordered container: "
                         "visit order depends on hash seeding and rehash "
                         "history" % expr))
                for c in _CALL.finditer(body):
                    callee = c.group(1)
                    if (callee in NOT_CALLS or callee in self.allow
                            or callee in self.barriers or callee in seen
                            or callee not in self.defs):
                        continue
                    chain.setdefault(callee, chain[name] + " -> " + callee)
                    queue.append(callee)
        return findings, len(seen)


# --------------------------------------------------------------------------
# libclang engine (exact AST walk; used when importable).
# --------------------------------------------------------------------------
def try_libclang(compile_commands, allow):
    try:
        import clang.cindex as ci  # noqa: F401
    except Exception:
        return None

    import json
    try:
        entries = json.load(open(compile_commands))
    except OSError as e:
        fail("cannot read %s: %s" % (compile_commands, e))

    index = ci.Index.create()
    roots, barriers, graph, bodies = set(), set(), {}, {}

    def annots(cur):
        return [c.spelling for c in cur.get_children()
                if c.kind == ci.CursorKind.ANNOTATE_ATTR]

    banned_callees = re.compile(
        r"^(now|rand|srand|getenv|setlocale|clock_gettime|gettimeofday)$")

    def visit(cur, fn):
        for ch in cur.get_children():
            if ch.kind == ci.CursorKind.CALL_EXPR and ch.referenced:
                ref = ch.referenced
                usr = ref.get_usr() or ref.spelling
                graph.setdefault(fn, set()).add(usr)
                if banned_callees.match(ref.spelling or ""):
                    parent = ref.semantic_parent
                    scope = parent.spelling if parent else ""
                    if ref.spelling == "now" and "clock" not in scope:
                        pass
                    else:
                        bodies.setdefault(fn, []).append(
                            ("call", ref.spelling,
                             ch.location.file.name if ch.location.file
                             else "?", ch.location.line))
            if ch.kind == ci.CursorKind.CXX_FOR_RANGE_STMT:
                t = ""
                for gs in ch.get_children():
                    t = gs.type.spelling or t
                    break
                if "unordered_" in t:
                    bodies.setdefault(fn, []).append(
                        ("unordered-range", t,
                         ch.location.file.name if ch.location.file else "?",
                         ch.location.line))
            visit(ch, fn)

    for e in entries:
        src = os.path.join(e.get("directory", "."), e["file"])
        if "/src/" not in src.replace("\\", "/"):
            continue
        args = [a for a in e.get("command", "").split()[1:]
                if a.startswith(("-I", "-D", "-std"))]
        try:
            tu = index.parse(src, args=args)
        except Exception:
            continue
        for cur in tu.cursor.walk_preorder():
            if cur.kind in (ci.CursorKind.FUNCTION_DECL,
                            ci.CursorKind.CXX_METHOD) and cur.is_definition():
                usr = cur.get_usr() or cur.spelling
                tags = annots(cur)
                if "rdb::deterministic" in tags:
                    roots.add(usr)
                if "rdb::det_barrier" in tags:
                    barriers.add(usr)
                visit(cur, usr)

    findings = []
    seen = set()
    queue = [r for r in roots if r.split("#")[0].split("@")[-1] not in allow]
    while queue:
        fn = queue.pop()
        if fn in seen or fn in barriers:
            continue
        seen.add(fn)
        for kind, what, f, line in bodies.get(fn, ()):
            findings.append((fn, fn, f, line, kind, what))
        queue.extend(graph.get(fn, ()))
    return findings, len(seen)


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------
def load_allowlist(path):
    allow = set()
    if not os.path.exists(path):
        return allow
    for ln in open(path, encoding="utf-8"):
        ln = ln.split("#", 1)[0].strip()
        if ln:
            allow.add(ln.split()[0])
    return allow


def gather_sources(repo):
    files = []
    for sub in ("src",):
        for dirpath, _dirs, names in os.walk(os.path.join(repo, sub)):
            for n in sorted(names):
                if n.endswith((".h", ".cpp", ".cc", ".hpp")):
                    files.append(os.path.join(dirpath, n))
    return files


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repo", default=None,
                    help="repository root (default: this script's parent)")
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json for the libclang engine")
    ap.add_argument("--fixture", default=None,
                    help="lint one standalone file (CheckDeterminism.cmake "
                         "should-pass/should-fail probes)")
    ap.add_argument("--allowlist", default=None)
    ap.add_argument("-q", "--quiet", action="store_true")
    args = ap.parse_args()

    repo = args.repo or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    allow_path = args.allowlist or os.path.join(
        repo, "scripts", "determinism_allowlist.txt")
    allow = load_allowlist(allow_path)

    if args.fixture:
        files = [args.fixture]
        engine = TextualEngine(files, allow)
        findings, walked = engine.run()
    else:
        findings = None
        if args.compile_commands and os.path.exists(args.compile_commands):
            r = try_libclang(args.compile_commands, allow)
            if r is not None:
                findings, walked = r
                if not args.quiet:
                    print("engine: libclang (exact AST walk)")
        if findings is None:
            if args.compile_commands and not args.quiet:
                print("libclang unavailable — falling back to the textual "
                      "engine (same gate, name-keyed call graph)")
            engine = TextualEngine(gather_sources(repo), allow)
            findings, walked = engine.run()

    if findings:
        print("determinism lint: %d finding(s)" % len(findings))
        for root, qual, path, line, key, why in findings:
            print("  [%s] %s:%s\n    reached via: %s\n    function: %s\n"
                  "    %s" % (key, path, line, root, qual, why))
        print("\nFix the nondeterminism, move the code out of the det-zone, "
              "or add a justified barrier to %s" % allow_path)
        return 1
    if not args.quiet:
        print("determinism lint: clean (%d functions walked from the "
              "det-zone roots, %d allowlist entries)" % (walked, len(allow)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
