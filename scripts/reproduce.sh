#!/usr/bin/env bash
# One-shot reproduction: build, test, regenerate every paper figure.
#
#   scripts/reproduce.sh            # full run (tests + all figures)
#   RDB_BENCH_QUICK=1 scripts/reproduce.sh   # fast smoke pass of the benches
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

echo "== tests =="
ctest --test-dir build -j"$(nproc)" --output-on-failure 2>&1 | tee test_output.txt

echo "== benches (paper figures + ablations + extension + micro) =="
{
  for b in build/bench/*; do
    case "$b" in *CMakeFiles*|*.cmake) continue ;; esac
    echo "=== $(basename "$b") ==="
    "$b"
  done
} 2>&1 | tee bench_output.txt

echo "done: see test_output.txt, bench_output.txt, EXPERIMENTS.md"
