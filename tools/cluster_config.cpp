#include "tools/cluster_config.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace rdb::tools {

void ClusterTopology::wire(runtime::TcpTransport& transport) const {
  for (const auto& [id, peer] : replicas) {
    Endpoint ep = Endpoint::replica(id);
    if (ep == transport.self()) continue;
    transport.add_peer(ep, peer);
  }
  for (const auto& [id, peer] : clients) {
    Endpoint ep = Endpoint::client(id);
    if (ep == transport.self()) continue;
    transport.add_peer(ep, peer);
  }
}

std::optional<ClusterTopology> load_topology(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open topology file: %s\n", path.c_str());
    return std::nullopt;
  }
  ClusterTopology topo;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ss(line);
    std::string kind;
    if (!(ss >> kind)) continue;  // blank line
    std::uint32_t id;
    std::string host;
    std::uint32_t port;
    if (!(ss >> id >> host >> port) || port > 65535) {
      std::fprintf(stderr, "%s:%d: expected '<kind> <id> <host> <port>'\n",
                   path.c_str(), lineno);
      return std::nullopt;
    }
    runtime::TcpPeer peer{host, static_cast<std::uint16_t>(port)};
    if (kind == "replica") {
      topo.replicas[id] = peer;
    } else if (kind == "client") {
      topo.clients[id] = peer;
    } else {
      std::fprintf(stderr, "%s:%d: unknown kind '%s'\n", path.c_str(), lineno,
                   kind.c_str());
      return std::nullopt;
    }
  }
  if (topo.replicas.size() < 4) {
    std::fprintf(stderr, "topology needs at least 4 replicas (3f+1, f>=1)\n");
    return std::nullopt;
  }
  // Replica ids must be 0..n-1 (the primary of view v is v mod n).
  ReplicaId expect = 0;
  for (const auto& [id, peer] : topo.replicas) {
    if (id != expect++) {
      std::fprintf(stderr, "replica ids must be contiguous from 0\n");
      return std::nullopt;
    }
  }
  return topo;
}

}  // namespace rdb::tools
