// rdb_client — YCSB load generator / smoke client for an rdb_replica
// cluster.
//
//   rdb_client --id 1 --topology cluster.topo [--requests 1000]
//              [--burst 10] [--ops 1] [--key-seed N]
//
// Submits `requests` transactions in bursts, waits for f+1 matching replies
// per transaction, and reports throughput and latency percentiles.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>

#include "common/stats.h"
#include "runtime/client.h"
#include "runtime/tcp_transport.h"
#include "tools/cluster_config.h"
#include "workload/ycsb.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: rdb_client --id N --topology FILE [--requests N] "
               "[--burst N] [--ops N] [--key-seed N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  rdb::ClientId id = 0;
  bool have_id = false;
  std::string topology_path;
  std::uint64_t requests = 1000;
  std::uint32_t burst = 10;
  std::uint32_t ops = 1;
  std::uint64_t key_seed = 7;

  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--id")) {
      id = static_cast<rdb::ClientId>(std::atoi(need("--id")));
      have_id = true;
    } else if (!std::strcmp(argv[i], "--topology")) {
      topology_path = need("--topology");
    } else if (!std::strcmp(argv[i], "--requests")) {
      requests = static_cast<std::uint64_t>(std::atoll(need("--requests")));
    } else if (!std::strcmp(argv[i], "--burst")) {
      burst = static_cast<std::uint32_t>(std::atoi(need("--burst")));
    } else if (!std::strcmp(argv[i], "--ops")) {
      ops = static_cast<std::uint32_t>(std::atoi(need("--ops")));
    } else if (!std::strcmp(argv[i], "--key-seed")) {
      key_seed = static_cast<std::uint64_t>(std::atoll(need("--key-seed")));
    } else {
      return usage();
    }
  }
  if (!have_id || topology_path.empty() || burst == 0) return usage();

  auto topo = rdb::tools::load_topology(topology_path);
  if (!topo) return 1;
  auto self_it = topo->clients.find(id);
  if (self_it == topo->clients.end()) {
    std::fprintf(stderr, "client %u not in topology\n", id);
    return 1;
  }

  rdb::crypto::KeyRegistry registry(key_seed);
  rdb::runtime::TcpTransport transport(rdb::Endpoint::client(id),
                                       self_it->second.port);
  topo->wire(transport);

  rdb::runtime::ClientConfig cc;
  cc.id = id;
  cc.n = topo->replica_count();
  rdb::runtime::Client client(cc, transport, registry);

  rdb::workload::YcsbConfig wcfg;
  wcfg.ops_per_txn = ops;
  rdb::workload::YcsbWorkload workload(wcfg);
  rdb::Rng rng(id * 7919 + 1);

  rdb::LatencyHistogram latency;
  std::uint64_t committed = 0, failed = 0;
  auto start = std::chrono::steady_clock::now();

  while (committed + failed < requests) {
    std::uint32_t this_burst = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(burst, requests - committed - failed));
    std::vector<rdb::protocol::Transaction> txns;
    for (std::uint32_t i = 0; i < this_burst; ++i) {
      auto t = workload.make_transaction(rng, id, 0);
      txns.push_back(client.make_transaction(t.payload, t.ops));
    }
    auto t0 = std::chrono::steady_clock::now();
    auto results = client.submit_and_wait(std::move(txns));
    auto dt = std::chrono::steady_clock::now() - t0;
    if (results) {
      committed += results->size();
      latency.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()));
    } else {
      failed += this_burst;
      std::fprintf(stderr, "burst timed out (view change in progress?)\n");
    }
  }

  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf(
      "client %u: %llu committed, %llu failed, %.0f txn/s, burst latency "
      "avg=%.2fms p50=%.2fms p99=%.2fms\n",
      id, static_cast<unsigned long long>(committed),
      static_cast<unsigned long long>(failed),
      static_cast<double>(committed) / seconds, latency.mean_ns() / 1e6,
      latency.percentile_ns(50) / 1e6, latency.percentile_ns(99) / 1e6);
  transport.stop();
  return failed == 0 ? 0 : 1;
}
