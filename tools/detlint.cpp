// detlint — determinism-lint driver.
//
// The real analysis lives in scripts/check_determinism.py (call-graph walk
// from RDB_DETERMINISTIC roots, libclang when available, textual engine
// otherwise). This binary exists so the gate has a single entry point that
// works from CMake, CI, and the shell without anyone remembering the python
// invocation, and so the gate degrades loudly instead of silently when the
// interpreter is missing:
//
//   1. Locate the repo root (walk up from --repo / cwd until
//      scripts/check_determinism.py is found).
//   2. Run `python3 scripts/check_determinism.py --repo <root>` and forward
//      its exit status (0 clean, 1 findings, 2 setup error).
//   3. If python3 itself cannot be executed, fall back to a built-in token
//      scan of src/protocol/ and src/ledger/ — the two directories whose
//      code MUST be replica-deterministic — for the non-negotiable banned
//      tokens (clocks, rand, getenv, unordered containers). The fallback is
//      weaker (no call-graph walk) but still catches the bug classes that
//      fork replica state, so a python-less build host keeps a gate.
//
// Exit status: 0 clean, 1 findings, 2 setup error (mirrors the script).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

int usage() {
  std::fprintf(stderr, "usage: detlint [--repo DIR] [--fallback-only]\n");
  return 2;
}

// Walks up from `start` looking for scripts/check_determinism.py.
fs::path find_repo_root(fs::path start) {
  std::error_code ec;
  start = fs::absolute(start, ec);
  for (fs::path p = start; !p.empty(); p = p.parent_path()) {
    if (fs::exists(p / "scripts" / "check_determinism.py", ec)) return p;
    if (p == p.root_path()) break;
  }
  return {};
}

// Banned-token table for the fallback scanner. Kept to tokens whose mere
// appearance in protocol/ledger code is a finding — the full catalog (with
// call-graph context) lives in the python script.
struct BannedToken {
  const char* token;
  const char* why;
};
constexpr BannedToken kBanned[] = {
    {"std::unordered_", "hash-order iteration forks replica state"},
    {"steady_clock", "clock reads differ across replicas"},
    {"system_clock", "clock reads differ across replicas"},
    {"high_resolution_clock", "clock reads differ across replicas"},
    {"std::rand", "unseeded/global RNG"},
    {"srand(", "unseeded/global RNG"},
    {"random_device", "hardware entropy differs across replicas"},
    {"getenv", "environment differs across replicas"},
    {"setlocale", "locale-dependent formatting"},
};

bool is_source_file(const fs::path& p) {
  const auto ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

// Crude but sufficient: drop //-comments so documentation that *names* a
// banned token (e.g. "no steady_clock here") does not trip the scanner.
std::string strip_line_comment(const std::string& line) {
  const auto pos = line.find("//");
  return pos == std::string::npos ? line : line.substr(0, pos);
}

int fallback_scan(const fs::path& root) {
  std::fprintf(stderr,
               "detlint: python3 unavailable — running built-in token scan "
               "of src/protocol/ and src/ledger/ (weaker than the call-graph "
               "walk; install python3 for the full gate)\n");
  int findings = 0;
  for (const char* dir : {"src/protocol", "src/ledger"}) {
    std::error_code ec;
    const fs::path base = root / dir;
    if (!fs::exists(base, ec)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base, ec)) {
      if (!entry.is_regular_file() || !is_source_file(entry.path())) continue;
      std::ifstream in(entry.path());
      std::string line;
      int lineno = 0;
      bool in_block_comment = false;
      while (std::getline(in, line)) {
        ++lineno;
        std::string code = strip_line_comment(line);
        // Track /* ... */ comments across lines (no nesting in this tree).
        if (in_block_comment) {
          const auto end = code.find("*/");
          if (end == std::string::npos) continue;
          code = code.substr(end + 2);
          in_block_comment = false;
        }
        const auto start = code.find("/*");
        if (start != std::string::npos) {
          const auto end = code.find("*/", start + 2);
          if (end == std::string::npos) {
            code = code.substr(0, start);
            in_block_comment = true;
          } else {
            code = code.substr(0, start) + code.substr(end + 2);
          }
        }
        for (const auto& b : kBanned) {
          if (code.find(b.token) != std::string::npos) {
            std::fprintf(stderr, "[banned-token] %s:%d: '%s' — %s\n",
                         entry.path().lexically_relative(root).c_str(),
                         lineno, b.token, b.why);
            ++findings;
          }
        }
      }
    }
  }
  if (findings != 0) {
    std::fprintf(stderr, "detlint (fallback): %d finding(s)\n", findings);
    return 1;
  }
  std::fprintf(stderr, "detlint (fallback): clean\n");
  return 0;
}

// Returns the child's exit status, or -1 if the command could not run at
// all (shell reports 127 for command-not-found).
int run_script(const fs::path& root) {
  const std::string cmd = "python3 \"" +
                          (root / "scripts" / "check_determinism.py").string() +
                          "\" --repo \"" + root.string() + "\"";
  const int rc = std::system(cmd.c_str());
  if (rc == -1) return -1;
#if defined(WEXITSTATUS)
  if (WIFEXITED(rc)) {
    const int code = WEXITSTATUS(rc);
    return code == 127 ? -1 : code;
  }
  return -1;
#else
  return rc == 127 ? -1 : rc;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  fs::path repo = fs::current_path();
  bool fallback_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--repo") == 0 && i + 1 < argc) {
      repo = argv[++i];
    } else if (std::strcmp(argv[i], "--fallback-only") == 0) {
      fallback_only = true;  // test hook: exercise the scanner directly
    } else {
      return usage();
    }
  }

  const fs::path root = find_repo_root(repo);
  if (root.empty()) {
    std::fprintf(stderr,
                 "detlint: could not find scripts/check_determinism.py above "
                 "%s\n", repo.string().c_str());
    return 2;
  }

  if (!fallback_only) {
    const int rc = run_script(root);
    if (rc >= 0) return rc;
  }
  return fallback_scan(root);
}
