// rdb_mc — bounded-exhaustive model checker CLI for the consensus engines.
//
// Explores delivery schedules of a closed N-replica world (src/mc/) under
// configurable fault budgets, running four safety oracles on every state.
// Exit status is the contract the CI model-check job enforces:
//
//   0  no oracle violated (or --replay outcome matched the trace's expect)
//   1  an oracle was violated (counterexample shrunk and written out), or
//      a --replay outcome contradicted the trace's expect line
//   2  bad usage / IO error
//
// Usage:
//   rdb_mc [--engine pbft|poe|zyzzyva] [--n N] [--batches N]
//          [--checkpoint-interval N] [--drops N] [--dups N] [--timeouts N]
//          [--crash R] [--byz] [--strict-spec]
//          [--mode dfs|walk] [--depth N] [--max-states N]
//          [--seed N] [--walks N] [--walk-depth N]
//          [--trace-out FILE] [--quiet]
//   rdb_mc --record FILE [config flags] [--seed N] [--walk-depth N]
//   rdb_mc --replay FILE
//
// --record runs one seeded random walk and writes the schedule it took as
// an expect-clean trace — how the known-good corpus exemplars under
// tests/corpus/mc/ are produced. --replay re-runs a recorded schedule
// through the deterministic replay layer and prints its canonical report —
// the same bytes on every run, build type, and sanitizer.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/bytes.h"
#include "common/rng.h"
#include "mc/explorer.h"
#include "mc/replay.h"

namespace {

using namespace rdb;

int usage() {
  std::fprintf(
      stderr,
      "usage: rdb_mc [--engine pbft|poe|zyzzyva] [--n N] [--batches N]\n"
      "              [--checkpoint-interval N] [--drops N] [--dups N]\n"
      "              [--timeouts N] [--crash R] [--byz] [--strict-spec]\n"
      "              [--mode dfs|walk] [--depth N] [--max-states N]\n"
      "              [--seed N] [--walks N] [--walk-depth N]\n"
      "              [--trace-out FILE] [--quiet]\n"
      "       rdb_mc --record FILE [config flags]\n"
      "       rdb_mc --replay FILE\n");
  return 2;
}

// One seeded walk, recorded as an expect-clean trace. Refuses to write a
// trace whose replay is not clean (that would be a violation find — use
// the explorer's shrink path for those).
int record_walk(const mc::McConfig& cfg, const mc::ExploreLimits& limits,
                const std::string& path) {
  std::uint64_t sm = limits.seed;
  Rng rng(splitmix64(sm));
  mc::World w = mc::make_initial_world(cfg);
  mc::Trace trace;
  trace.cfg = cfg;
  trace.note = "recorded walk seed=" + std::to_string(limits.seed) +
               " depth=" + std::to_string(limits.walk_depth);
  for (std::uint32_t d = 0; d < limits.walk_depth; ++d) {
    const std::vector<mc::Transition> en = mc::enabled_transitions(w);
    if (en.empty()) break;
    const mc::Transition t = en[rng.below(en.size())];
    if (!mc::apply_transition(w, t)) continue;
    trace.steps.push_back(t);
    if (mc::evaluate_oracles(w)) break;
  }
  const mc::ReplayResult check = mc::replay_trace(trace);
  if (check.violation) {
    std::fprintf(stderr,
                 "rdb_mc: recorded walk violates oracle %s — not writing an"
                 " expect-clean trace\n",
                 check.oracle.c_str());
    return 1;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "rdb_mc: cannot write %s\n", path.c_str());
    return 2;
  }
  out << mc::serialize_trace(trace);
  std::printf("recorded %zu steps to %s (fingerprint %s)\n",
              trace.steps.size(), path.c_str(),
              to_hex(check.final_fingerprint).c_str());
  return 0;
}

int replay_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "rdb_mc: cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  mc::Trace trace;
  std::string err;
  if (!mc::parse_trace(text.str(), &trace, &err)) {
    std::fprintf(stderr, "rdb_mc: %s: %s\n", path.c_str(), err.c_str());
    return 2;
  }
  const mc::ReplayResult result = mc::replay_trace(trace);
  const std::string report = mc::replay_report(trace, result);
  std::fputs(report.c_str(), stdout);
  const std::string outcome = result.violation ? result.oracle : "clean";
  if (outcome == trace.expect) {
    std::printf("expectation met (%s)\n",
                trace.expect == "clean"
                    ? "clean"
                    : ("violation " + trace.expect).c_str());
    return 0;
  }
  std::printf("EXPECTATION MISMATCH: trace expects %s, replay produced %s\n",
              trace.expect.c_str(), outcome.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  mc::McConfig cfg;
  cfg.engine = mc::EngineKind::kPbft;
  mc::ExploreLimits limits;
  std::string mode = "dfs";
  std::string trace_out = "mc_violation.trace";
  std::string replay_path;
  std::string record_path;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_val = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--byz") {
      cfg.byzantine = true;
    } else if (arg == "--strict-spec") {
      cfg.strict_spec_agreement = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--engine") {
      if (!(v = next_val())) return usage();
      auto kind = mc::engine_kind_from_name(v);
      if (!kind) return usage();
      cfg.engine = *kind;
    } else if (arg == "--mode") {
      if (!(v = next_val())) return usage();
      mode = v;
      if (mode != "dfs" && mode != "walk") return usage();
    } else if (arg == "--trace-out") {
      if (!(v = next_val())) return usage();
      trace_out = v;
    } else if (arg == "--replay") {
      if (!(v = next_val())) return usage();
      replay_path = v;
    } else if (arg == "--record") {
      if (!(v = next_val())) return usage();
      record_path = v;
    } else if (arg == "--n") {
      if (!(v = next_val())) return usage();
      cfg.n = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--batches") {
      if (!(v = next_val())) return usage();
      cfg.batches = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--checkpoint-interval") {
      if (!(v = next_val())) return usage();
      cfg.checkpoint_interval = std::strtoull(v, nullptr, 10);
    } else if (arg == "--drops") {
      if (!(v = next_val())) return usage();
      cfg.max_drops = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--dups") {
      if (!(v = next_val())) return usage();
      cfg.max_dups = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--timeouts") {
      if (!(v = next_val())) return usage();
      cfg.max_timeouts =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--crash") {
      if (!(v = next_val())) return usage();
      cfg.crash_replica =
          static_cast<std::int32_t>(std::strtol(v, nullptr, 10));
    } else if (arg == "--depth") {
      if (!(v = next_val())) return usage();
      limits.max_depth =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--max-states") {
      if (!(v = next_val())) return usage();
      limits.max_states = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seed") {
      if (!(v = next_val())) return usage();
      limits.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--walks") {
      if (!(v = next_val())) return usage();
      limits.walks = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--walk-depth") {
      if (!(v = next_val())) return usage();
      limits.walk_depth =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else {
      return usage();
    }
  }

  if (!replay_path.empty()) return replay_file(replay_path);
  if (cfg.n < 4 || cfg.batches == 0) return usage();
  if (!record_path.empty()) return record_walk(cfg, limits, record_path);

  if (!quiet) {
    std::printf(
        "rdb_mc: mode=%s engine=%s n=%" PRIu32 " batches=%" PRIu32
        " cp=%" PRIu64 " drops=%" PRIu32 " dups=%" PRIu32 " timeouts=%" PRIu32
        " crash=%" PRId32 " byz=%d strict_spec=%d\n",
        mode.c_str(), mc::engine_kind_name(cfg.engine), cfg.n, cfg.batches,
        cfg.checkpoint_interval, cfg.max_drops, cfg.max_dups,
        cfg.max_timeouts, cfg.crash_replica, cfg.byzantine ? 1 : 0,
        cfg.strict_spec_agreement ? 1 : 0);
  }

  const mc::ExploreResult result = mode == "dfs"
                                       ? mc::explore_dfs(cfg, limits)
                                       : mc::explore_random_walks(cfg, limits);
  const mc::ExploreStats& s = result.stats;
  std::printf("states %" PRIu64 "\n", s.distinct_states);
  std::printf("transitions %" PRIu64 "\n", s.transitions_applied);
  std::printf("dedup_hits %" PRIu64 "\n", s.dedup_hits);
  std::printf("sleep_pruned %" PRIu64 "\n", s.sleep_pruned);
  std::printf("depth_capped %" PRIu64 "\n", s.depth_capped);
  std::printf("state_capped %" PRIu64 "\n", s.state_capped);
  std::printf("max_depth %" PRIu32 "\n", s.max_depth_reached);
  if (mode == "dfs")
    std::printf("complete %s\n", s.complete ? "yes" : "no (frontier capped)");
  std::printf("violations %d\n", result.violation ? 1 : 0);

  if (!result.violation) return 0;

  std::printf("VIOLATION oracle=%s\n", result.violation->oracle.c_str());
  std::printf("detail: %s\n", result.violation->detail.c_str());

  mc::Trace raw;
  raw.cfg = cfg;
  raw.steps = result.counterexample;
  raw.note = "found by rdb_mc mode=" + mode +
             " seed=" + std::to_string(limits.seed);
  const mc::Trace shrunk = mc::shrink_trace(raw);
  std::printf("counterexample: %zu steps, shrunk to %zu\n",
              raw.steps.size(), shrunk.steps.size());
  const mc::ReplayResult rr = mc::replay_trace(shrunk);
  std::fputs(mc::replay_report(shrunk, rr).c_str(), stdout);

  std::ofstream out(trace_out, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "rdb_mc: cannot write %s\n", trace_out.c_str());
    return 2;
  }
  out << mc::serialize_trace(shrunk);
  std::printf("trace written to %s\n", trace_out.c_str());
  return 1;
}
