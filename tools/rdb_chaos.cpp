// rdb_chaos — cluster-wide recovery drills under deterministic fault
// injection (the operational counterpart of tests/chaos_test.cpp).
//
//   rdb_chaos [--scenario all|primary-crash|partition-heal|dup-reorder|
//              zyzzyva-storm|crash-restart] [--seed N] [--replicas N]
//             [--batch-size N] [--rounds N]
//
// (--drill is accepted as an alias for --scenario.)
//
// Each scenario spins up an in-process PBFT cluster wired through the
// FaultyTransport chaos layer (or, for zyzzyva-storm, drives the Zyzzyva
// engines directly), injects the scripted fault, and checks the recovery
// invariant: client progress, >= 1 view change after a primary crash,
// identical canonical chain digests across live replicas, exactly-once
// execution under duplicate/reorder storms. crash-restart runs the durable
// path instead: a replica is hard-killed (its process state destroyed),
// rebuilt from its on-disk consensus log, and rejoined via a checkpoint-
// anchored snapshot once its peers have pruned the batches it missed. Exit
// code 0 iff every selected scenario holds. Seeded: the same --seed
// reproduces the same fault trace.
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "protocol/zyzzyva.h"
#include "runtime/cluster.h"
#include "workload/ycsb.h"

namespace {

using namespace std::chrono_literals;
using namespace rdb;
using runtime::LocalCluster;

struct Options {
  std::string scenario = "all";
  std::uint64_t seed = 42;
  std::uint32_t replicas = 4;
  std::uint32_t batch_size = 5;
  int rounds = 4;
};

int usage() {
  std::fprintf(stderr,
               "usage: rdb_chaos [--scenario all|primary-crash|partition-heal"
               "|dup-reorder|zyzzyva-storm|crash-restart]\n"
               "                 [--seed N] [--replicas N] [--batch-size N] "
               "[--rounds N]\n"
               "       (--drill is an alias for --scenario)\n");
  return 2;
}

struct Drill {
  std::shared_ptr<workload::YcsbWorkload> wl;
  std::unique_ptr<LocalCluster> cluster;
  std::unique_ptr<runtime::Client> client;
  Rng rng;

  explicit Drill(const Options& opt, runtime::LinkFaults faults = {})
      : wl(std::make_shared<workload::YcsbWorkload>(
            workload::YcsbConfig{.record_count = 500, .ops_per_txn = 2})),
        rng(opt.seed ^ 0xD811) {
    runtime::ClusterConfig cfg;
    cfg.replicas = opt.replicas;
    cfg.batch_size = opt.batch_size;
    cfg.enable_chaos = true;
    cfg.fault_plan.seed = opt.seed;
    cfg.fault_plan.default_faults = faults;
    cfg.catchup_poll_ns = 100'000'000;
    cfg.request_timeout_ns = 600'000'000;
    cfg.client_timeout = 1500ms;
    cfg.client_max_retries = 8;
    cfg.client_broadcast_after = 1;
    // Tight checkpoint cadence so every drill crosses several boundaries:
    // checkpoints carry the execution fingerprint (exec_acc), so this both
    // arms the cross-replica divergence tripwire during the drill and gives
    // fingerprints_match() boundaries to compare afterwards. Snapshots must
    // come along: pruning now outruns a partitioned straggler, whose only
    // road back is the snapshot door.
    cfg.checkpoint_interval = 2;
    cfg.enable_snapshots = true;
    auto w = wl;
    cfg.execute = [w](const protocol::Transaction& t, storage::KvStore& s) {
      return w->execute(t, s);
    };
    cluster = std::make_unique<LocalCluster>(cfg);
    cluster->start();
    client = cluster->make_client(1);
  }

  bool submit_burst(int count) {
    std::vector<protocol::Transaction> burst;
    for (int i = 0; i < count; ++i) {
      auto t = wl->make_transaction(rng, 1, 0);
      burst.push_back(client->make_transaction(t.payload, t.ops));
    }
    return client->submit_and_wait(std::move(burst)).has_value();
  }

  bool converged(const std::vector<ReplicaId>& ids,
                 std::chrono::seconds timeout) {
    auto deadline = std::chrono::steady_clock::now() + timeout;
    int stable = 0;
    SeqNum last = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      SeqNum lo = ~SeqNum{0}, hi = 0;
      for (ReplicaId r : ids) {
        SeqNum e = cluster->replica(r).last_executed();
        lo = std::min(lo, e);
        hi = std::max(hi, e);
      }
      if (lo == hi && lo > 0 && lo == last) {
        if (++stable >= 3) return true;
      } else {
        stable = 0;
        last = lo == hi ? lo : 0;
      }
      std::this_thread::sleep_for(50ms);
    }
    return false;
  }

  bool chains_match(const std::vector<ReplicaId>& ids) {
    auto acc = cluster->replica(ids[0]).chain().accumulator();
    for (ReplicaId r : ids)
      if (!(cluster->replica(r).chain().accumulator() == acc)) return false;
    return true;
  }
};

bool check(bool ok, const char* what) {
  std::printf("  %-52s %s\n", what, ok ? "ok" : "FAIL");
  return ok;
}

// Execution fingerprints (the exec_acc fold carried on checkpoint votes)
// must be byte-identical wherever two replicas retain the same checkpoint
// boundary. Chain digests only prove the replicas agreed on ORDER; this
// proves execution itself — result codes and state deltas — did not fork.
// Requires at least one shared boundary, otherwise the assertion is vacuous.
bool fingerprints_match(LocalCluster& cluster,
                        const std::vector<ReplicaId>& ids) {
  const auto& base = cluster.replica(ids[0]).exec_fingerprints();
  bool any = false;
  for (ReplicaId r : ids) {
    if (r == ids[0]) continue;
    for (const auto& [seq, fp] : cluster.replica(r).exec_fingerprints()) {
      auto it = base.find(seq);
      if (it == base.end()) continue;
      any = true;
      if (!(it->second == fp)) return false;
    }
  }
  return any;
}

// No replica may have tripped the divergence fail-stop during an
// honest-replica drill: faults here reorder/drop/duplicate MESSAGES, never
// execution, so a firing would mean the tripwire false-positives.
bool none_diverged(LocalCluster& cluster, const std::vector<ReplicaId>& ids) {
  for (ReplicaId r : ids)
    if (cluster.replica(r).diverged() ||
        cluster.replica(r).stats().exec_divergence != 0)
      return false;
  return true;
}

bool drill_primary_crash(const Options& opt) {
  std::printf("[primary-crash] crash view-0 primary mid-load (seed=%llu)\n",
              static_cast<unsigned long long>(opt.seed));
  Drill d(opt);
  bool ok = check(d.submit_burst(static_cast<int>(opt.batch_size)),
                  "warm-up burst commits");
  d.cluster->chaos()->crash(Endpoint::replica(0));
  ok &= check(d.submit_burst(static_cast<int>(opt.batch_size)),
              "burst commits after primary crash");
  bool viewed = true;
  for (ReplicaId r = 1; r < opt.replicas; ++r)
    viewed &= d.cluster->replica(r).view() >= 1;
  ok &= check(viewed, ">= 1 view change on every live replica");
  ok &= check(d.client->retries() >= 1, "client retried + broadcast");
  std::vector<ReplicaId> live;
  for (ReplicaId r = 1; r < opt.replicas; ++r) live.push_back(r);
  ok &= check(d.converged(live, 30s), "live replicas quiesce");
  ok &= check(d.chains_match(live), "identical canonical chain digest");
  ok &= check(fingerprints_match(*d.cluster, live),
              "identical execution fingerprints");
  ok &= check(none_diverged(*d.cluster, live), "divergence tripwire silent");
  auto c = d.cluster->chaos()->counters();
  std::printf("  injected: crash_drops=%llu\n",
              static_cast<unsigned long long>(c.crash_drops));
  d.cluster->stop();
  return ok;
}

bool drill_partition_heal(const Options& opt) {
  std::printf("[partition-heal] straggler catches up after heal "
              "(seed=%llu)\n",
              static_cast<unsigned long long>(opt.seed));
  Drill d(opt);
  ReplicaId straggler = opt.replicas - 1;
  d.cluster->chaos()->isolate(Endpoint::replica(straggler));
  bool ok = true;
  for (int i = 0; i < opt.rounds; ++i)
    ok &= d.submit_burst(static_cast<int>(opt.batch_size));
  ok = check(ok, "bursts commit without the straggler");
  ok &= check(d.cluster->replica(straggler).last_executed() == 0,
              "straggler saw nothing while partitioned");
  d.cluster->chaos()->heal();
  // Two bursts, not one: the straggler's missed batches are already pruned
  // (checkpoint_interval = 2), so it can only rejoin through the snapshot
  // door — and it only learns the cluster's stable frontier from a FRESH
  // round of checkpoint votes, which needs the next boundary crossed.
  bool healed = d.submit_burst(static_cast<int>(opt.batch_size)) &&
                d.submit_burst(static_cast<int>(opt.batch_size));
  ok &= check(healed, "bursts commit after heal");
  std::vector<ReplicaId> all;
  for (ReplicaId r = 0; r < opt.replicas; ++r) all.push_back(r);
  ok &= check(d.converged(all, 30s), "straggler catches up (state transfer)");
  ok &= check(d.chains_match(all), "identical canonical chain digest");
  ok &= check(fingerprints_match(*d.cluster, all),
              "identical execution fingerprints");
  ok &= check(none_diverged(*d.cluster, all), "divergence tripwire silent");
  auto c = d.cluster->chaos()->counters();
  std::printf("  injected: partition_drops=%llu\n",
              static_cast<unsigned long long>(c.partition_drops));
  d.cluster->stop();
  return ok;
}

bool drill_dup_reorder(const Options& opt) {
  std::printf("[dup-reorder] duplicate/reorder storm (seed=%llu)\n",
              static_cast<unsigned long long>(opt.seed));
  runtime::LinkFaults storm;
  storm.duplicate = 0.25;
  storm.reorder = 0.25;
  storm.jitter_ns = 2'000'000;
  Drill d(opt, storm);
  bool ok = true;
  for (int i = 0; i < opt.rounds; ++i)
    ok &= d.submit_burst(static_cast<int>(opt.batch_size));
  ok = check(ok, "all bursts commit through the storm");
  std::vector<ReplicaId> all;
  for (ReplicaId r = 0; r < opt.replicas; ++r) all.push_back(r);
  ok &= check(d.converged(all, 30s), "cluster quiesces");
  std::uint64_t expected =
      static_cast<std::uint64_t>(opt.rounds) * opt.batch_size;
  bool exact = true;
  for (ReplicaId r = 0; r < opt.replicas; ++r)
    exact &= d.cluster->replica(r).stats().txns_executed == expected;
  ok &= check(exact, "exactly-once execution (zero double-executions)");
  ok &= check(d.chains_match(all), "identical canonical chain digest");
  ok &= check(fingerprints_match(*d.cluster, all),
              "identical execution fingerprints");
  ok &= check(none_diverged(*d.cluster, all), "divergence tripwire silent");
  auto c = d.cluster->chaos()->counters();
  std::printf("  injected: duplicated=%llu reordered=%llu\n",
              static_cast<unsigned long long>(c.duplicated),
              static_cast<unsigned long long>(c.reordered));
  d.cluster->stop();
  return ok;
}

bool drill_zyzzyva_storm(const Options& opt) {
  std::printf("[zyzzyva-storm] OrderRequest dup/reorder storm (seed=%llu)\n",
              static_cast<unsigned long long>(opt.seed));
  constexpr std::uint32_t kN = 4;
  std::vector<std::unique_ptr<protocol::ZyzzyvaEngine>> engines;
  for (ReplicaId r = 0; r < kN; ++r) {
    protocol::ZyzzyvaConfig cfg;
    cfg.n = kN;
    cfg.self = r;
    engines.push_back(std::make_unique<protocol::ZyzzyvaEngine>(cfg));
  }
  const SeqNum kBatches = 8;
  std::vector<protocol::Message> orders;
  for (SeqNum s = 1; s <= kBatches; ++s) {
    protocol::Transaction t;
    t.client = 1;
    t.req_id = s;
    t.ops = 1;
    auto acts = engines[0]->make_order_request(
        s, {t}, s, crypto::sha256("batch" + std::to_string(s)));
    for (auto& a : acts)
      if (auto* bc = protocol::action_as<protocol::BroadcastAction>(a))
        orders.push_back(bc->msg);
  }
  bool ok = check(orders.size() == kBatches, "primary ordered every batch");
  for (ReplicaId r = 1; r < kN; ++r) {
    Rng rng(opt.seed + r);
    std::vector<protocol::Message> storm;
    for (const auto& m : orders) {
      storm.push_back(m);
      storm.push_back(m);
    }
    for (std::size_t i = storm.size(); i > 1; --i)
      std::swap(storm[i - 1], storm[rng.below(i)]);
    for (const auto& m : storm) (void)engines[r]->on_order_request(m);
    ok &= engines[r]->last_spec_executed() == kBatches;
    ok &= engines[r]->metrics().spec_executions == kBatches;
  }
  ok = check(ok, "exactly-once speculative execution per replica");
  bool histories = true;
  for (SeqNum s = 1; s <= kBatches; ++s)
    for (ReplicaId r = 2; r < kN; ++r)
      histories &= engines[r]->history_at(s) == engines[1]->history_at(s);
  ok &= check(histories, "hash-chained histories identical (no fork)");
  return ok;
}

bool drill_crash_restart(const Options& opt) {
  std::printf(
      "[crash-restart] hard kill -> disk recovery -> snapshot rejoin "
      "(seed=%llu)\n",
      static_cast<unsigned long long>(opt.seed));
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("rdb_crash_restart_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  auto wl = std::make_shared<workload::YcsbWorkload>(
      workload::YcsbConfig{.record_count = 500, .ops_per_txn = 2});
  runtime::ClusterConfig cfg;
  cfg.replicas = opt.replicas;
  cfg.batch_size = opt.batch_size;
  cfg.durable = true;
  cfg.data_dir = dir.string();
  cfg.enable_snapshots = true;
  cfg.checkpoint_interval = 4;
  cfg.catchup_poll_ns = 100'000'000;
  auto w = wl;
  cfg.execute = [w](const protocol::Transaction& t, storage::KvStore& s) {
    return w->execute(t, s);
  };
  auto cluster = std::make_unique<LocalCluster>(cfg);
  cluster->start();
  auto client = cluster->make_client(1);
  Rng rng(opt.seed ^ 0xC4A5);
  auto burst = [&](int rounds) {
    for (int i = 0; i < rounds; ++i) {
      std::vector<protocol::Transaction> b;
      for (std::uint32_t j = 0; j < opt.batch_size; ++j) {
        auto t = wl->make_transaction(rng, 1, 0);
        b.push_back(client->make_transaction(t.payload, t.ops));
      }
      if (!client->submit_and_wait(std::move(b)).has_value()) return false;
    }
    return true;
  };
  auto converged = [&](std::chrono::seconds timeout) {
    auto deadline = std::chrono::steady_clock::now() + timeout;
    int stable = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      SeqNum lo = ~SeqNum{0}, hi = 0;
      for (ReplicaId r = 0; r < opt.replicas; ++r) {
        SeqNum e = cluster->replica(r).last_executed();
        lo = std::min(lo, e);
        hi = std::max(hi, e);
      }
      if (lo == hi && lo > 0) {
        if (++stable >= 3) return true;
      } else {
        stable = 0;
      }
      std::this_thread::sleep_for(50ms);
    }
    return false;
  };

  bool ok = check(burst(2), "warm-up bursts commit");
  const ReplicaId victim = opt.replicas - 1;
  cluster->kill_replica(victim);
  ok &= check(!cluster->is_alive(victim),
              "victim hard-killed (in-memory state destroyed)");

  // Drive far past several checkpoint intervals: the survivors prune the
  // batches the victim missed, so its only road back is a vouched snapshot.
  ok &= check(burst(14), "bursts commit with the victim down (f = 1)");

  cluster->restart_replica(victim);
  ok &= check(cluster->replica(victim).stats().recovered_batches > 0,
              "restart replayed the on-disk consensus log");

  // Cross the next checkpoint boundary so a fresh round of checkpoint votes
  // tells the rejoiner how far the cluster moved without it.
  ok &= check(burst(6), "bursts commit after restart");
  ok &= check(converged(30s), "cluster converges with the rejoined victim");
  bool match = true;
  auto acc = cluster->replica(0).chain().accumulator();
  for (ReplicaId r = 1; r < opt.replicas; ++r)
    match &= cluster->replica(r).chain().accumulator() == acc;
  ok &= check(match, "identical canonical chain digest");
  std::vector<ReplicaId> everyone;
  for (ReplicaId r = 0; r < opt.replicas; ++r) everyone.push_back(r);
  ok &= check(fingerprints_match(*cluster, everyone),
              "identical execution fingerprints (incl. rejoiner)");
  ok &= check(none_diverged(*cluster, everyone), "divergence tripwire silent");
  auto st = cluster->replica(victim).stats();
  ok &= check(st.snapshots_installed >= 1,
              "rejoin went through the snapshot door");
  std::printf(
      "  durable: recovered_batches=%llu snapshots_installed=%llu "
      "log_commits=%llu\n",
      static_cast<unsigned long long>(st.recovered_batches),
      static_cast<unsigned long long>(st.snapshots_installed),
      static_cast<unsigned long long>(st.log_commits));
  cluster->stop();
  cluster.reset();
  fs::remove_all(dir);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--scenario") ||
        !std::strcmp(argv[i], "--drill")) {
      opt.scenario = need(argv[i]);
    } else if (!std::strcmp(argv[i], "--seed")) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(need("--seed")));
    } else if (!std::strcmp(argv[i], "--replicas")) {
      opt.replicas = static_cast<std::uint32_t>(std::atoi(need("--replicas")));
    } else if (!std::strcmp(argv[i], "--batch-size")) {
      opt.batch_size =
          static_cast<std::uint32_t>(std::atoi(need("--batch-size")));
    } else if (!std::strcmp(argv[i], "--rounds")) {
      opt.rounds = std::atoi(need("--rounds"));
    } else {
      return usage();
    }
  }
  if (opt.replicas < 4) {
    std::fprintf(stderr, "need >= 4 replicas for f >= 1\n");
    return 2;
  }

  bool ok = true;
  bool any = false;
  auto run = [&](const char* name, bool (*fn)(const Options&)) {
    if (opt.scenario != "all" && opt.scenario != name) return;
    any = true;
    ok &= fn(opt);
  };
  run("primary-crash", drill_primary_crash);
  run("partition-heal", drill_partition_heal);
  run("dup-reorder", drill_dup_reorder);
  run("zyzzyva-storm", drill_zyzzyva_storm);
  run("crash-restart", drill_crash_restart);
  if (!any) return usage();

  std::printf("%s\n", ok ? "ALL DRILLS PASSED" : "DRILL FAILURES");
  return ok ? 0 : 1;
}
