// Cluster topology file shared by the rdb_replica / rdb_client tools.
//
// Format, one entry per line (comments start with '#'):
//   replica <id> <host> <port>
//   client  <id> <host> <port>
// Every process in the deployment reads the same file.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/types.h"
#include "runtime/tcp_transport.h"

namespace rdb::tools {

struct ClusterTopology {
  std::map<ReplicaId, runtime::TcpPeer> replicas;
  std::map<ClientId, runtime::TcpPeer> clients;

  std::uint32_t replica_count() const {
    return static_cast<std::uint32_t>(replicas.size());
  }

  /// Declares every known peer on `transport` (excluding its own endpoint).
  void wire(runtime::TcpTransport& transport) const;
};

/// Parses a topology file; returns nullopt (and prints the problem to
/// stderr) on malformed input.
std::optional<ClusterTopology> load_topology(const std::string& path);

}  // namespace rdb::tools
