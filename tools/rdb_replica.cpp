// rdb_replica — one ResilientDB replica as a standalone process.
//
//   rdb_replica --id 0 --topology cluster.topo [--batch-size 50]
//               [--store mem|pagedb] [--data-dir DIR]
//
// Run one of these per line in the topology file (4+ replicas) plus any
// number of rdb_client processes; together they form a permissioned
// blockchain over TCP. Prints a status line every 5 seconds; SIGINT/SIGTERM
// shuts down cleanly.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <thread>

#include "runtime/replica.h"
#include "runtime/tcp_transport.h"
#include "storage/mem_store.h"
#include "storage/page_db.h"
#include "tools/cluster_config.h"
#include "workload/ycsb.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

int usage() {
  std::fprintf(stderr,
               "usage: rdb_replica --id N --topology FILE [--batch-size N] "
               "[--store mem|pagedb] [--data-dir DIR] [--key-seed N] "
               "[--verify-threads N] [--verify-batch N] "
               "[--verify-batch-wait-us N] [--verify-certs] "
               "[--schemes standard|ed25519]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  rdb::ReplicaId id = rdb::kInvalidReplica;
  std::string topology_path;
  std::string store_kind = "mem";
  std::string data_dir = ".";
  std::uint32_t batch_size = 50;
  std::uint64_t key_seed = 7;
  std::uint32_t verify_threads = 0;
  std::uint32_t verify_batch = 64;
  std::uint32_t verify_batch_wait_us = 200;
  bool verify_certs = false;
  std::string schemes = "standard";

  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--id")) {
      id = static_cast<rdb::ReplicaId>(std::atoi(need("--id")));
    } else if (!std::strcmp(argv[i], "--topology")) {
      topology_path = need("--topology");
    } else if (!std::strcmp(argv[i], "--batch-size")) {
      batch_size = static_cast<std::uint32_t>(std::atoi(need("--batch-size")));
    } else if (!std::strcmp(argv[i], "--store")) {
      store_kind = need("--store");
    } else if (!std::strcmp(argv[i], "--data-dir")) {
      data_dir = need("--data-dir");
    } else if (!std::strcmp(argv[i], "--key-seed")) {
      key_seed = static_cast<std::uint64_t>(std::atoll(need("--key-seed")));
    } else if (!std::strcmp(argv[i], "--verify-threads")) {
      verify_threads =
          static_cast<std::uint32_t>(std::atoi(need("--verify-threads")));
    } else if (!std::strcmp(argv[i], "--verify-batch")) {
      verify_batch =
          static_cast<std::uint32_t>(std::atoi(need("--verify-batch")));
    } else if (!std::strcmp(argv[i], "--verify-batch-wait-us")) {
      verify_batch_wait_us = static_cast<std::uint32_t>(
          std::atoi(need("--verify-batch-wait-us")));
    } else if (!std::strcmp(argv[i], "--verify-certs")) {
      verify_certs = true;
    } else if (!std::strcmp(argv[i], "--schemes")) {
      schemes = need("--schemes");
    } else {
      return usage();
    }
  }
  if (schemes != "standard" && schemes != "ed25519") {
    std::fprintf(stderr, "--schemes wants standard or ed25519, got %s\n",
                 schemes.c_str());
    return 2;
  }
  if (id == rdb::kInvalidReplica || topology_path.empty()) return usage();

  auto topo = rdb::tools::load_topology(topology_path);
  if (!topo) return 1;
  auto self_it = topo->replicas.find(id);
  if (self_it == topo->replicas.end()) {
    std::fprintf(stderr, "replica %u not in topology\n", id);
    return 1;
  }

  // NOTE: key_seed is the trusted-setup stand-in — every process in the
  // deployment must use the same seed (see crypto/key_registry.h).
  rdb::crypto::KeyRegistry registry(key_seed);
  rdb::runtime::TcpTransport transport(rdb::Endpoint::replica(id),
                                       self_it->second.port);
  topo->wire(transport);

  std::unique_ptr<rdb::storage::KvStore> store;
  if (store_kind == "pagedb") {
    rdb::storage::PageDbConfig pc;
    std::filesystem::create_directories(data_dir);
    pc.path = data_dir + "/replica-" + std::to_string(id) + ".pagedb";
    store = std::make_unique<rdb::storage::PageDb>(pc);
  } else {
    store = std::make_unique<rdb::storage::MemStore>();
  }

  auto workload = std::make_shared<rdb::workload::YcsbWorkload>(
      rdb::workload::YcsbConfig{});

  rdb::runtime::ReplicaConfig rc;
  rc.n = topo->replica_count();
  rc.id = id;
  rc.batch_size = batch_size;
  rc.verify_threads = verify_threads;
  rc.verify_batch_size = verify_batch;
  rc.verify_batch_wait_ns =
      static_cast<rdb::TimeNs>(verify_batch_wait_us) * 1000;
  rc.verify_certificates = verify_certs;
  // "ed25519" signs replica-to-replica traffic too (the paper's all-DS
  // configuration) — the setup where batch verification pays off most.
  // Every replica in the deployment must agree; clients are unaffected
  // (client links are Ed25519 under both configs).
  if (schemes == "ed25519")
    rc.schemes = rdb::crypto::SchemeConfig::all_ed25519();
  rdb::runtime::Replica replica(
      rc, transport, registry, std::move(store),
      [workload](const rdb::protocol::Transaction& t,
                 rdb::storage::KvStore& s) { return workload->execute(t, s); });

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  replica.start();
  std::printf("replica %u up on port %u (n=%u, f=%u, store=%s)\n", id,
              transport.port(), rc.n, rdb::max_faulty(rc.n),
              store_kind.c_str());
  std::fflush(stdout);

  std::uint64_t last_txns = 0;
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::seconds(5));
    auto stats = replica.stats();
    std::printf(
        "replica %u: view=%llu executed=%llu batches, %llu txns "
        "(+%llu), chain=%llu blocks, invalid-sigs=%llu\n",
        id, static_cast<unsigned long long>(replica.view()),
        static_cast<unsigned long long>(stats.batches_executed),
        static_cast<unsigned long long>(stats.txns_executed),
        static_cast<unsigned long long>(stats.txns_executed - last_txns),
        static_cast<unsigned long long>(replica.chain().total_blocks()),
        static_cast<unsigned long long>(stats.invalid_signatures));
    if (stats.batch_flushes > 0) {
      // Batch-verify stage: wave counts alongside the reject counters so a
      // perf drill can confirm the burst path is actually engaged.
      std::printf(
          "replica %u: batch_verify sigs=%llu flushes=%llu mean=%.1f "
          "bisections=%llu cert_failures=%llu\n",
          id, static_cast<unsigned long long>(stats.batched_sigs),
          static_cast<unsigned long long>(stats.batch_flushes),
          stats.batch_mean_size,
          static_cast<unsigned long long>(stats.batch_fallback_bisections),
          static_cast<unsigned long long>(stats.cert_vote_failures));
    }
    if (stats.rejected_total > 0) {
      // One line per nonzero reject reason: chaos drills grep these to
      // assert malformed frames are counted, not silently dropped.
      std::printf("replica %u: rejected_messages total=%llu", id,
                  static_cast<unsigned long long>(stats.rejected_total));
      for (std::size_t i = 0; i < stats.rejected_messages.size(); ++i) {
        if (stats.rejected_messages[i] == 0) continue;
        std::printf(" %s=%llu",
                    rdb::protocol::reject_reason_name(
                        static_cast<rdb::protocol::RejectReason>(i)),
                    static_cast<unsigned long long>(
                        stats.rejected_messages[i]));
      }
      std::printf("\n");
    }
    std::fflush(stdout);
    last_txns = stats.txns_executed;
  }

  std::printf("replica %u shutting down\n", id);
  replica.stop();
  transport.stop();
  return 0;
}
