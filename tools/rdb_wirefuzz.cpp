// rdb_wirefuzz — structure-aware malformed-wire fuzzer CLI.
//
// Drives protocol::wirefuzz (sample -> mutate -> parse+validate) and reports
// per-mutation / per-reject-reason counts. Exit status is the contract the
// CI smoke job enforces:
//
//   0  all oracles held (no liveness or canonicity violation; crashes and
//      sanitizer reports abort the process, so "it exited 0" means the
//      parse+validate door survived every mutant)
//   1  an oracle was violated
//   2  bad usage / IO error
//
// Usage:
//   rdb_wirefuzz [--seed N] [--iters N] [--write-corpus DIR]
//                [--replay DIR]
//
// --write-corpus saves one exemplar per (mutation, reject-reason) pair plus
// accepted mutants as .bin files — the checked-in tests/corpus/wire/ set.
// --replay runs every .bin file in DIR through parse+validate instead of
// fuzzing (corpus regression; also handy for triaging a single input).
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "protocol/wirefuzz.h"

namespace {

using rdb::Bytes;
namespace wf = rdb::protocol::wirefuzz;
namespace proto = rdb::protocol;

int usage() {
  std::fprintf(stderr,
               "usage: rdb_wirefuzz [--seed N] [--iters N] "
               "[--write-corpus DIR] [--replay DIR]\n");
  return 2;
}

std::vector<Bytes> load_corpus(const std::filesystem::path& dir) {
  std::vector<Bytes> inputs;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.is_regular_file() && entry.path().extension() == ".bin")
      files.push_back(entry.path());
  std::sort(files.begin(), files.end());  // deterministic replay order
  for (const auto& f : files) {
    std::ifstream in(f, std::ios::binary);
    Bytes b((std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
    inputs.push_back(std::move(b));
  }
  return inputs;
}

void print_report(const wf::FuzzResult& r) {
  std::printf("iterations         %" PRIu64 "\n", r.iterations);
  std::printf("accepted           %" PRIu64 "\n", r.accepted);
  std::printf("rejected           %" PRIu64 "\n", r.rejected);
  for (std::size_t i = 0; i < r.rejected_by_reason.size(); ++i) {
    if (r.rejected_by_reason[i] == 0) continue;
    std::printf("  reject[%-24s] %" PRIu64 "\n",
                proto::reject_reason_name(
                    static_cast<proto::RejectReason>(i)),
                r.rejected_by_reason[i]);
  }
  for (std::size_t i = 0; i < r.by_mutation.size(); ++i) {
    if (r.by_mutation[i] == 0) continue;
    std::printf("  mutation[%-14s] %" PRIu64 "\n",
                wf::mutation_name(static_cast<wf::Mutation>(i)),
                r.by_mutation[i]);
  }
  std::printf("liveness_failures  %" PRIu64 "\n", r.liveness_failures);
  std::printf("canonicity_failures %" PRIu64 "\n", r.canonicity_failures);
  for (const auto& note : r.failure_notes)
    std::printf("  !! %s\n", note.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  wf::FuzzConfig config;
  std::string corpus_dir;
  std::string replay_dir;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seed") {
      const char* v = next();
      if (!v) return usage();
      config.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--iters") {
      const char* v = next();
      if (!v) return usage();
      config.iters = std::strtoull(v, nullptr, 10);
    } else if (arg == "--write-corpus") {
      const char* v = next();
      if (!v) return usage();
      corpus_dir = v;
      config.collect_corpus = true;
    } else if (arg == "--replay") {
      const char* v = next();
      if (!v) return usage();
      replay_dir = v;
    } else {
      return usage();
    }
  }

  if (!replay_dir.empty()) {
    std::error_code ec;
    if (!std::filesystem::is_directory(replay_dir, ec)) {
      std::fprintf(stderr, "rdb_wirefuzz: not a directory: %s\n",
                   replay_dir.c_str());
      return 2;
    }
    auto inputs = load_corpus(replay_dir);
    std::printf("replaying %zu corpus inputs from %s\n", inputs.size(),
                replay_dir.c_str());
    auto result = wf::replay(inputs, config.ctx);
    print_report(result);
    return result.ok() ? 0 : 1;
  }

  std::printf("fuzzing: seed=%" PRIu64 " iters=%" PRIu64 "\n", config.seed,
              config.iters);
  auto result = wf::run(config);
  print_report(result);

  if (!corpus_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(corpus_dir, ec);
    if (ec) {
      std::fprintf(stderr, "rdb_wirefuzz: cannot create %s\n",
                   corpus_dir.c_str());
      return 2;
    }
    std::size_t idx = 0;
    for (const auto& input : result.corpus) {
      char name[64];
      std::snprintf(name, sizeof(name), "seed%" PRIu64 "_%03zu.bin",
                    config.seed, idx++);
      std::ofstream out(std::filesystem::path(corpus_dir) / name,
                        std::ios::binary);
      out.write(reinterpret_cast<const char*>(input.data()),
                static_cast<std::streamsize>(input.size()));
    }
    std::printf("wrote %zu corpus files to %s\n", result.corpus.size(),
                corpus_dir.c_str());
  }
  return result.ok() ? 0 : 1;
}
